#include "src/arrangement/arc.h"

#include <algorithm>
#include <cmath>

#include "src/geometry/solvers.h"
#include "src/util/check.h"

namespace pnn {

Arc Arc::Segment(Point2 a, Point2 b, int curve_id) {
  Arc arc;
  arc.type = Type::kSegment;
  arc.curve_id = curve_id;
  arc.seg_a = a;
  arc.seg_b = b;
  arc.t0 = 0.0;
  arc.t1 = 1.0;
  return arc;
}

Arc Arc::Conic(const PolarBranch& branch, double psi0, double psi1, int curve_id) {
  PNN_CHECK(psi0 < psi1);
  Arc arc;
  arc.type = Type::kConic;
  arc.curve_id = curve_id;
  arc.branch = branch;
  arc.t0 = psi0;
  arc.t1 = psi1;
  return arc;
}

Point2 Arc::Eval(double t) const {
  if (type == Type::kSegment) return Lerp(seg_a, seg_b, t);
  return branch.PointAt(t);
}

Vec2 Arc::Tangent(double t) const {
  if (type == Type::kSegment) return seg_b - seg_a;
  return branch.TangentAt(t);
}

double Arc::ParamOf(Point2 p) const {
  if (type == Type::kSegment) {
    Vec2 d = seg_b - seg_a;
    double len2 = SquaredNorm(d);
    if (len2 == 0) return 0.0;
    return Dot(p - seg_a, d) / len2;
  }
  return branch.PsiOf(p);
}

Box2 Arc::Bounds() const {
  Box2 b;
  b.Expand(Start());
  b.Expand(End());
  if (type == Type::kSegment) return b;
  // Interior x/y extrema of the polar arc: sign changes of the tangent
  // components, located by scanning (the tangent components have O(1)
  // oscillations over a branch).
  for (int coord = 0; coord < 2; ++coord) {
    auto deriv = [&](double psi) {
      Vec2 tan = branch.TangentAt(psi);
      return coord == 0 ? tan.x : tan.y;
    };
    RealRoots roots;
    ScanRoots(deriv, t0, t1, 64, &roots);
    for (int i = 0; i < roots.count; ++i) b.Expand(branch.PointAt(roots.root[i]));
  }
  return b;
}

namespace {

// Conic-arc hits with an axis-parallel line, in closed form via the
// implicit conic (quadratic in the free coordinate), filtered to the
// branch and the parameter range.
void ConicAxisLineHits(const Arc& arc, double value, bool vertical,
                       std::vector<double>* ts) {
  double c[6];
  arc.branch.ImplicitConic(c);
  double qa, qb, qc;
  if (vertical) {  // x = value: quadratic in y.
    qa = c[2];
    qb = c[1] * value + c[4];
    qc = c[0] * value * value + c[3] * value + c[5];
  } else {  // y = value: quadratic in x.
    qa = c[0];
    qb = c[1] * value + c[3];
    qc = c[2] * value * value + c[4] * value + c[5];
  }
  RealRoots roots = SolveQuadratic(qa, qb, qc);
  double tol = 1e-9 * (1.0 + std::abs(arc.t1 - arc.t0));
  for (int i = 0; i < roots.count; ++i) {
    Point2 p = vertical ? Point2{value, roots.root[i]} : Point2{roots.root[i], value};
    if (!arc.branch.OnBranchSide(p)) continue;
    double psi = arc.branch.PsiOf(p);
    if (psi >= arc.t0 - tol && psi <= arc.t1 + tol) {
      ts->push_back(std::clamp(psi, arc.t0, arc.t1));
    }
  }
}

}  // namespace

void Arc::VerticalLineHits(double x, std::vector<double>* ts) const {
  if (type == Type::kSegment) {
    double dx = seg_b.x - seg_a.x;
    if (dx == 0.0) return;  // Parallel (or on) the line: no transversal hit.
    double t = (x - seg_a.x) / dx;
    if (t >= t0 - 1e-12 && t <= t1 + 1e-12) ts->push_back(std::clamp(t, t0, t1));
    return;
  }
  ConicAxisLineHits(*this, x, /*vertical=*/true, ts);
}

void Arc::HorizontalLineHits(double y, std::vector<double>* ts) const {
  if (type == Type::kSegment) {
    double dy = seg_b.y - seg_a.y;
    if (dy == 0.0) return;
    double t = (y - seg_a.y) / dy;
    if (t >= t0 - 1e-12 && t <= t1 + 1e-12) ts->push_back(std::clamp(t, t0, t1));
    return;
  }
  ConicAxisLineHits(*this, y, /*vertical=*/false, ts);
}

Arc Arc::SubArc(double a, double b) const {
  PNN_CHECK(a < b);
  Arc out = *this;
  out.t0 = a;
  out.t1 = b;
  return out;
}

namespace {

constexpr double kParamTol = 1e-9;

// Newton-polishes p onto the pair of supporting curves of a and b, using
// their exact defining equations.
Point2 PolishOnCurves(const Arc& a, const Arc& b, Point2 p) {
  auto eq = [](const Arc& arc, Point2 x) -> double {
    if (arc.type == Arc::Type::kSegment) {
      Vec2 d = arc.seg_b - arc.seg_a;
      double len = Norm(d);
      return Cross(d, x - arc.seg_a) / (len > 0 ? len : 1.0);
    }
    return Distance(x, arc.branch.f1) - Distance(x, arc.branch.f2) - 2 * arc.branch.a;
  };
  auto f = [&](Point2 x) -> Vec2 { return {eq(a, x), eq(b, x)}; };
  Point2 polished = p;
  double scale = 1.0 + Norm(p);
  if (Newton2D(f, &polished, 1e-13 * scale)) return polished;
  return p;
}

// True if the point (given as parameter values) lies within both arcs'
// parameter ranges (with tolerance scaled to the range).
bool WithinRange(const Arc& arc, double t) {
  double tol = kParamTol * (1.0 + std::abs(arc.t1 - arc.t0));
  return t >= arc.t0 - tol && t <= arc.t1 + tol;
}

void AddCandidate(const Arc& a, const Arc& b, Point2 p, std::vector<Point2>* out) {
  p = PolishOnCurves(a, b, p);
  // Branch-side filters for conics (the implicit conic has two branches).
  if (a.type == Arc::Type::kConic && !a.branch.OnBranchSide(p)) return;
  if (b.type == Arc::Type::kConic && !b.branch.OnBranchSide(p)) return;
  if (!WithinRange(a, a.ParamOf(p)) || !WithinRange(b, b.ParamOf(p))) return;
  // Dedupe against points already found.
  for (const Point2& q : *out) {
    if (Distance(p, q) < 1e-9 * (1.0 + Norm(p))) return;
  }
  out->push_back(p);
}

void SegSeg(const Arc& a, const Arc& b, std::vector<Point2>* out) {
  Vec2 da = a.seg_b - a.seg_a;
  Vec2 db = b.seg_b - b.seg_a;
  double denom = Cross(da, db);
  if (denom == 0.0) return;  // Parallel or collinear: no transversal point.
  Vec2 w = b.seg_a - a.seg_a;
  double t = Cross(w, db) / denom;
  double s = Cross(w, da) / denom;
  if (t < a.t0 - kParamTol || t > a.t1 + kParamTol) return;
  if (s < b.t0 - kParamTol || s > b.t1 + kParamTol) return;
  AddCandidate(a, b, Lerp(a.seg_a, a.seg_b, t), out);
}

void SegConic(const Arc& seg, const Arc& con, std::vector<Point2>* out) {
  double c[6];
  con.branch.ImplicitConic(c);
  // Substitute p(t) = a + t d into the conic: quadratic in t.
  Point2 p0 = seg.seg_a;
  Vec2 d = seg.seg_b - seg.seg_a;
  double A = c[0] * d.x * d.x + c[1] * d.x * d.y + c[2] * d.y * d.y;
  double B = 2 * c[0] * p0.x * d.x + c[1] * (p0.x * d.y + p0.y * d.x) +
             2 * c[2] * p0.y * d.y + c[3] * d.x + c[4] * d.y;
  double C = c[0] * p0.x * p0.x + c[1] * p0.x * p0.y + c[2] * p0.y * p0.y +
             c[3] * p0.x + c[4] * p0.y + c[5];
  RealRoots roots = SolveQuadratic(A, B, C);
  for (int i = 0; i < roots.count; ++i) {
    double t = roots.root[i];
    if (t < seg.t0 - kParamTol || t > seg.t1 + kParamTol) continue;
    AddCandidate(seg, con, Lerp(seg.seg_a, seg.seg_b, t), out);
  }
}

// Conic-conic via scanning one arc's polar parameter against the other's
// implicit form. Two passes: (1) sign-change bracketing for transversal
// crossings; (2) same-sign local minima of |f| are refined by golden
// search — if the refined extremum crosses zero, the pair of nearby roots
// the sampling stepped over is recovered by bisection. Every candidate is
// Newton-polished on the exact distance equations afterwards.
void ConicConic(const Arc& a, const Arc& b, std::vector<Point2>* out) {
  double c[6];
  b.branch.ImplicitConic(c);
  double scale = std::abs(c[0]) + std::abs(c[1]) + std::abs(c[2]) + std::abs(c[3]) +
                 std::abs(c[4]) + std::abs(c[5]);
  if (scale == 0) return;
  auto f = [&](double psi) {
    Point2 p = a.branch.PointAt(psi);
    return (c[0] * p.x * p.x + c[1] * p.x * p.y + c[2] * p.y * p.y + c[3] * p.x +
            c[4] * p.y + c[5]) /
           scale;
  };
  // Wide arcs (capped unbounded pieces span nearly the full branch) get
  // proportionally more samples.
  int samples = std::clamp(
      96 + static_cast<int>(192.0 * (a.t1 - a.t0) /
                            std::max(1e-12, 2.0 * a.branch.half_width)),
      96, 512);
  std::vector<double> g(samples + 1);
  for (int i = 0; i <= samples; ++i) {
    g[i] = f(a.t0 + (a.t1 - a.t0) * i / samples);
  }
  auto psi_at = [&](int i) { return a.t0 + (a.t1 - a.t0) * i / samples; };
  // Pass 1: sign changes.
  for (int i = 0; i < samples; ++i) {
    if (g[i] == 0.0) {
      AddCandidate(a, b, a.branch.PointAt(psi_at(i)), out);
    } else if ((g[i] < 0) != (g[i + 1] < 0)) {
      double root = Bisect(f, psi_at(i), psi_at(i + 1));
      AddCandidate(a, b, a.branch.PointAt(root), out);
    }
  }
  if (g[samples] == 0.0) AddCandidate(a, b, a.branch.PointAt(a.t1), out);
  // Pass 2: same-sign dips hiding a root pair.
  for (int i = 1; i < samples; ++i) {
    if (std::abs(g[i]) >= std::abs(g[i - 1]) || std::abs(g[i]) > std::abs(g[i + 1])) {
      continue;
    }
    if ((g[i - 1] < 0) != (g[i] < 0) || (g[i] < 0) != (g[i + 1] < 0)) continue;
    double sign = g[i] < 0 ? -1.0 : 1.0;
    // Golden-section minimization of sign * f over the bracket.
    double lo = psi_at(i - 1), hi = psi_at(i + 1);
    constexpr double kInvPhi = 0.6180339887498949;
    double x1 = hi - kInvPhi * (hi - lo), x2 = lo + kInvPhi * (hi - lo);
    double f1 = sign * f(x1), f2 = sign * f(x2);
    for (int it = 0; it < 80; ++it) {
      if (f1 < f2) {
        hi = x2;
        x2 = x1;
        f2 = f1;
        x1 = hi - kInvPhi * (hi - lo);
        f1 = sign * f(x1);
      } else {
        lo = x1;
        x1 = x2;
        f1 = f2;
        x2 = lo + kInvPhi * (hi - lo);
        f2 = sign * f(x2);
      }
    }
    double ext = 0.5 * (lo + hi);
    if (sign * f(ext) < 0) {
      // The dip crosses zero: two roots on either side of the extremum.
      double r1 = Bisect(f, psi_at(i - 1), ext);
      double r2 = Bisect(f, ext, psi_at(i + 1));
      AddCandidate(a, b, a.branch.PointAt(r1), out);
      AddCandidate(a, b, a.branch.PointAt(r2), out);
    }
  }
}

}  // namespace

void IntersectArcs(const Arc& a, const Arc& b, std::vector<Point2>* out) {
  if (a.type == Arc::Type::kSegment && b.type == Arc::Type::kSegment) {
    SegSeg(a, b, out);
  } else if (a.type == Arc::Type::kSegment) {
    SegConic(a, b, out);
  } else if (b.type == Arc::Type::kSegment) {
    SegConic(b, a, out);
  } else {
    ConicConic(a, b, out);
  }
}

}  // namespace pnn
