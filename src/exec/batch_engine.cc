#include "src/exec/batch_engine.h"

#include <algorithm>
#include <thread>

#include "src/dyn/answer_cache.h"
#include "src/util/check.h"
#include "src/util/stats.h"
#include "src/util/timer.h"

namespace pnn {
namespace exec {

namespace {

// The answer cache a pinned query run will consult: the dynamic snapshot's
// or the shard view's union-snapshot's (null for static backends or when
// caching is disabled).
const dyn::AnswerCache* PinCache(const api::EngineRef::Pin& pin) {
  if (pin.snap != nullptr) return pin.snap->answers.get();
  if (pin.view != nullptr) return pin.view->combined->answers.get();
  return nullptr;
}

dyn::AnswerCache::Stats PinCacheStats(const api::EngineRef::Pin& pin) {
  const dyn::AnswerCache* cache = PinCache(pin);
  return cache != nullptr ? cache->stats() : dyn::AnswerCache::Stats{};
}

void AccumulateCacheDelta(const api::EngineRef::Pin& pin,
                          const dyn::AnswerCache::Stats& before, BatchStats* stats) {
  dyn::AnswerCache::Stats after = PinCacheStats(pin);
  stats->answer_cache_hits += after.hits - before.hits;
  stats->answer_cache_misses += after.misses - before.misses;
}

}  // namespace

api::QueryRequest MixedOp::ToRequest(std::optional<double> eps) const {
  switch (kind) {
    case Kind::kInsert:
      return api::QueryRequest::Insert(*point);
    case Kind::kErase:
      return api::QueryRequest::Erase(id);
    case Kind::kNonzeroNN:
      return api::QueryRequest::NonzeroNN(q);
    case Kind::kQuantify:
      return api::QueryRequest::Quantify(q, eps);
    case Kind::kThresholdNN:
      return api::QueryRequest::ThresholdNN(q, tau, eps);
  }
  return api::QueryRequest::NonzeroNN(q);
}

BatchEngine::BatchEngine(api::EngineRef ref, BatchOptions options)
    : ref_(ref), options_(options) {
  PNN_CHECK_MSG(ref_.valid(), "BatchEngine needs an engine");
  size_t threads = options_.num_threads > 0
                       ? options_.num_threads
                       : std::max<size_t>(1, std::thread::hardware_concurrency());
  // The calling thread always participates, so a pool is only needed for
  // the extra threads beyond it.
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads - 1);
}

BatchEngine::BatchEngine(const Engine* engine, BatchOptions options)
    : BatchEngine(api::EngineRef(engine), options) {}

BatchEngine::BatchEngine(dyn::DynamicEngine* engine, BatchOptions options)
    : BatchEngine(api::EngineRef(engine), options) {}

BatchEngine::BatchEngine(shard::ShardedEngine* engine, BatchOptions options)
    : BatchEngine(api::EngineRef(engine), options) {}

const Engine& BatchEngine::engine() const {
  PNN_CHECK_MSG(ref_.static_engine() != nullptr,
                "engine() needs a static-Engine backend");
  return *ref_.static_engine();
}

dyn::DynamicEngine& BatchEngine::dynamic_engine() const {
  PNN_CHECK_MSG(ref_.dynamic_engine() != nullptr,
                "dynamic_engine() needs a DynamicEngine backend");
  return *ref_.dynamic_engine();
}

shard::ShardedEngine& BatchEngine::sharded_engine() const {
  PNN_CHECK_MSG(ref_.sharded_engine() != nullptr,
                "sharded_engine() needs a ShardedEngine backend");
  return *ref_.sharded_engine();
}

template <typename T, typename Fn>
BatchResult<T> BatchEngine::Run(size_t n, const Fn& answer_one) const {
  BatchResult<T> out;
  out.values.resize(n);
  std::vector<double> latencies(n, 0.0);
  Timer wall;
  auto one = [&](size_t i) {
    Timer t;
    out.values[i] = answer_one(i);
    latencies[i] = t.Micros();
  };
  bool parallel = pool_ && n >= options_.min_parallel_batch;
  if (parallel) {
    pool_->ParallelFor(n, one);
  } else {
    for (size_t i = 0; i < n; ++i) one(i);
  }
  out.stats.num_queries = n;
  out.stats.threads = parallel ? num_threads() : 1;
  out.stats.wall_seconds = wall.Seconds();
  out.stats.queries_per_sec =
      out.stats.wall_seconds > 0 ? static_cast<double>(n) / out.stats.wall_seconds : 0.0;
  out.stats.p50_micros = Percentile(&latencies, 50.0);
  out.stats.p99_micros = Percentile(&latencies, 99.0);
  return out;
}

void BatchEngine::CountPlans(std::optional<double> eps, size_t n,
                             BatchStats* stats) const {
  // The plan rule is query-independent (it depends on eps and the point
  // set only), so a run of n queries shares one plan. Accumulating (rather
  // than assigning) lets mixed streams sample the rule once per query run.
  if (ref_.PlanForQuantify(eps) == QuantifyPlan::kSpiral) {
    stats->spiral_plans += n;
  } else {
    stats->monte_carlo_plans += n;
  }
}

void BatchEngine::FillPlanStats(const std::vector<api::QueryRequest>& requests,
                                size_t begin, size_t end, BatchStats* stats) const {
  // Requests in one run usually share an eps; memoize the (cheap but not
  // free) plan-rule evaluation per distinct eps.
  std::optional<double> last_eps;
  bool have_last = false;
  size_t pending = 0;
  for (size_t i = begin; i < end; ++i) {
    if (!requests[i].is_quantify_like()) continue;
    if (api::Validate(requests[i]) != api::StatusCode::kOk) continue;
    if (!have_last || requests[i].eps != last_eps) {
      if (pending > 0) CountPlans(last_eps, pending, stats);
      last_eps = requests[i].eps;
      have_last = true;
      pending = 0;
    }
    ++pending;
  }
  if (pending > 0) CountPlans(last_eps, pending, stats);
}

void BatchEngine::PrewarmForRange(const std::vector<api::QueryRequest>& requests,
                                  size_t begin, size_t end) const {
  // Build the Monte-Carlo structures outside the fan-out, once per
  // distinct eps the run quantifies at (almost always one).
  std::vector<std::optional<double>> seen;
  for (size_t i = begin; i < end; ++i) {
    if (!requests[i].is_quantify_like()) continue;
    // Invalid requests (e.g. out-of-range eps) answer kInvalidArgument at
    // dispatch; prewarming them would abort inside the engine.
    if (api::Validate(requests[i]) != api::StatusCode::kOk) continue;
    if (std::find(seen.begin(), seen.end(), requests[i].eps) != seen.end()) continue;
    seen.push_back(requests[i].eps);
    ref_.Prewarm(requests[i].eps);
  }
}

BatchResult<std::vector<int>> BatchEngine::NonzeroNNBatch(
    const std::vector<Point2>& queries) const {
  // One backend pin per batch: capturing (and cache-validating) per query
  // is wasted work when the whole batch runs against one live set, and a
  // pinned view keeps the batch consistent under concurrent maintenance
  // (which preserves answers bit-for-bit anyway).
  api::EngineRef::Pin pin = ref_.Capture();
  dyn::AnswerCache::Stats before = PinCacheStats(pin);
  auto out = Run<std::vector<int>>(queries.size(), [&](size_t i) {
    api::QueryResponse r = ref_.Call(api::QueryRequest::NonzeroNN(queries[i]), pin);
    return std::move(r.ids);
  });
  AccumulateCacheDelta(pin, before, &out.stats);
  return out;
}

BatchResult<std::vector<Quantification>> BatchEngine::QuantifyBatch(
    const std::vector<Point2>& queries, std::optional<double> eps) const {
  ref_.Prewarm(eps);
  api::EngineRef::Pin pin = ref_.Capture();
  dyn::AnswerCache::Stats before = PinCacheStats(pin);
  auto out = Run<std::vector<Quantification>>(queries.size(), [&](size_t i) {
    api::QueryResponse r = ref_.Call(api::QueryRequest::Quantify(queries[i], eps), pin);
    return std::move(r.quants);
  });
  AccumulateCacheDelta(pin, before, &out.stats);
  CountPlans(eps, queries.size(), &out.stats);
  return out;
}

BatchResult<std::vector<Quantification>> BatchEngine::ThresholdNNBatch(
    const std::vector<Point2>& queries, double tau, std::optional<double> eps) const {
  ref_.Prewarm(eps);
  api::EngineRef::Pin pin = ref_.Capture();
  dyn::AnswerCache::Stats before = PinCacheStats(pin);
  auto out = Run<std::vector<Quantification>>(queries.size(), [&](size_t i) {
    api::QueryResponse r =
        ref_.Call(api::QueryRequest::ThresholdNN(queries[i], tau, eps), pin);
    return std::move(r.quants);
  });
  AccumulateCacheDelta(pin, before, &out.stats);
  CountPlans(eps, queries.size(), &out.stats);
  return out;
}

BatchResult<api::QueryResponse> BatchEngine::RequestBatch(
    const std::vector<api::QueryRequest>& requests) const {
  size_t n = requests.size();
  BatchResult<api::QueryResponse> out;
  out.values.resize(n);
  std::vector<double> query_lat, update_lat;
  bool parallel_used = false;
  Timer wall;

  // The pin each query run answers against: captured once at the start of
  // the run (updates between runs invalidate it), threaded through every
  // query in the run instead of re-capturing per query.
  api::EngineRef::Pin run_pin;
  auto answer_query = [&](size_t i, double* lat) {
    Timer t;
    out.values[i] = ref_.Call(requests[i], run_pin);
    *lat = t.Micros();
    out.values[i].server_micros = *lat;
  };

  size_t i = 0;
  while (i < n) {
    if (requests[i].is_update()) {
      Timer t;
      out.values[i] = ref_.Call(requests[i]);
      double micros = t.Micros();
      out.values[i].server_micros = micros;
      update_lat.push_back(micros);
      ++i;
      continue;
    }
    // Maximal run of consecutive queries: fan out when it pays.
    size_t j = i;
    while (j < n && !requests[j].is_update()) ++j;
    PrewarmForRange(requests, i, j);
    // Plan stats are sampled per run: interleaved updates can flip the
    // spiral-vs-Monte-Carlo rule mid-stream.
    FillPlanStats(requests, i, j, &out.stats);
    run_pin = ref_.Capture();
    dyn::AnswerCache::Stats cache_before = PinCacheStats(run_pin);
    size_t run = j - i;
    size_t lat_base = query_lat.size();
    query_lat.resize(lat_base + run);
    if (pool_ && run >= options_.min_parallel_batch) {
      pool_->ParallelFor(
          run, [&](size_t k) { answer_query(i + k, &query_lat[lat_base + k]); });
      parallel_used = true;
    } else {
      for (size_t k = 0; k < run; ++k) answer_query(i + k, &query_lat[lat_base + k]);
    }
    AccumulateCacheDelta(run_pin, cache_before, &out.stats);
    i = j;
  }

  BatchStats& s = out.stats;
  s.num_queries = query_lat.size();
  s.num_updates = update_lat.size();
  s.threads = parallel_used ? num_threads() : 1;
  s.wall_seconds = wall.Seconds();
  s.queries_per_sec = s.wall_seconds > 0
                          ? static_cast<double>(s.num_queries) / s.wall_seconds
                          : 0.0;
  s.p50_micros = Percentile(&query_lat, 50.0);
  s.p99_micros = Percentile(&query_lat, 99.0);
  s.update_p50_micros = Percentile(&update_lat, 50.0);
  s.update_p99_micros = Percentile(&update_lat, 99.0);
  return out;
}

BatchResult<MixedResult> BatchEngine::MixedBatch(const std::vector<MixedOp>& ops,
                                                 std::optional<double> eps) const {
  PNN_CHECK_MSG(ref_.supports_updates(),
                "MixedBatch needs a DynamicEngine or ShardedEngine backend");
  std::vector<api::QueryRequest> requests;
  requests.reserve(ops.size());
  for (const MixedOp& op : ops) requests.push_back(op.ToRequest(eps));
  BatchResult<api::QueryResponse> api_out = RequestBatch(requests);

  BatchResult<MixedResult> out;
  out.stats = api_out.stats;
  out.values.resize(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    api::QueryResponse& r = api_out.values[i];
    MixedResult& m = out.values[i];
    switch (ops[i].kind) {
      case MixedOp::Kind::kInsert:
      case MixedOp::Kind::kErase:
        m.id = r.id;
        break;
      case MixedOp::Kind::kNonzeroNN:
        m.nonzero = std::move(r.ids);
        break;
      case MixedOp::Kind::kQuantify:
      case MixedOp::Kind::kThresholdNN:
        m.quant = std::move(r.quants);
        break;
    }
  }
  return out;
}

}  // namespace exec
}  // namespace pnn
