#include "src/core/prob/quantify.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "src/util/arena.h"
#include "src/util/check.h"
#include "src/util/simd.h"

namespace pnn {
namespace {

// Below this many touched owners the survival product stays on the exact
// sequential loop (bit-identical to the pre-SIMD code in every dispatch
// mode); at or above it, the gather + simd::Product path takes over and
// the 1e-9 reassociation contract applies.
constexpr size_t kProductKernelMin = 16;

// Adaptive Simpson (shared with uncertain_point.cc's internal copy; small
// enough to keep local).
double SimpsonStep(const std::function<double(double)>& f, double a, double b,
                   double fa, double fm, double fb, double whole, double tol,
                   int depth) {
  double m = 0.5 * (a + b);
  double lm = 0.5 * (a + m), rm = 0.5 * (m + b);
  double flm = f(lm), frm = f(rm);
  double left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
  double right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
  if (depth <= 0 || std::abs(left + right - whole) <= 15.0 * tol) {
    return left + right + (left + right - whole) / 15.0;
  }
  return SimpsonStep(f, a, m, fa, flm, fm, left, tol / 2, depth - 1) +
         SimpsonStep(f, m, b, fm, frm, fb, right, tol / 2, depth - 1);
}

double AdaptiveSimpson(const std::function<double(double)>& f, double a, double b,
                       double tol) {
  if (a >= b) return 0.0;
  double m = 0.5 * (a + b);
  double fa = f(a), fm = f(m), fb = f(b);
  double whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
  return SimpsonStep(f, a, b, fa, fm, fb, whole, tol, 32);
}

// Product over owners of survival factors (1 - W_j), maintained under
// updates with exact zero tracking so divisions stay safe.
class SurvivalProduct {
 public:
  explicit SurvivalProduct(size_t n) : factor_(n, 1.0) {}

  // Decreases owner j's survival factor to `value`.
  void Set(size_t j, double value) {
    value = std::max(0.0, value);
    if (IsZero(factor_[j])) {
      --zeros_;
    } else {
      log_prod_ -= std::log(factor_[j]);
    }
    factor_[j] = value;
    if (IsZero(value)) {
      ++zeros_;
    } else {
      log_prod_ += std::log(value);
    }
  }

  double factor(size_t j) const { return factor_[j]; }

  // prod_{j != i} factor_j.
  double ProductExcluding(size_t i) const {
    bool self_zero = IsZero(factor_[i]);
    int other_zeros = zeros_ - (self_zero ? 1 : 0);
    if (other_zeros > 0) return 0.0;
    double lp = log_prod_;  // Excludes zero factors by construction.
    if (!self_zero) lp -= std::log(factor_[i]);
    return std::exp(lp);
  }

  // prod_j factor_j.
  double ProductAll() const {
    if (zeros_ > 0) return 0.0;
    return std::exp(log_prod_);
  }

 private:
  static bool IsZero(double v) { return v <= 1e-300; }
  std::vector<double> factor_;
  double log_prod_ = 0.0;  // Sum of logs of nonzero factors.
  int zeros_ = 0;
};

struct Loc {
  double dist;
  int owner;
  double weight;
};

}  // namespace

std::vector<Quantification> QuantifyExactDiscrete(const UncertainSet& points,
                                                  Point2 q) {
  size_t n = points.size();
  std::vector<Loc> locs;
  for (size_t i = 0; i < n; ++i) {
    PNN_CHECK_MSG(points[i].is_discrete(), "QuantifyExactDiscrete needs discrete points");
    const auto& d = points[i].discrete();
    for (size_t s = 0; s < d.locations.size(); ++s) {
      locs.push_back({Distance(q, d.locations[s]), static_cast<int>(i), d.weights[s]});
    }
  }
  std::sort(locs.begin(), locs.end(),
            [](const Loc& a, const Loc& b) { return a.dist < b.dist; });

  std::vector<double> pi(n, 0.0);
  std::vector<double> cum(n, 0.0);  // G_{q,j} accumulated so far.
  std::vector<int> remaining(n, 0);  // Locations of j not yet swept.
  for (const Loc& l : locs) ++remaining[l.owner];
  SurvivalProduct survival(n);

  size_t idx = 0;
  while (idx < locs.size()) {
    // Tie group: all locations at (exactly) this distance. Eq. (2) uses
    // G(r) with <=, so the whole group updates the cdfs first.
    size_t end = idx;
    while (end < locs.size() && locs[end].dist == locs[idx].dist) ++end;
    for (size_t k = idx; k < end; ++k) {
      int o = locs[k].owner;
      cum[o] += locs[k].weight;
      // Once every location of o has been swept, G_{q,o} is exactly 1 and
      // the survival factor exactly 0 — do not leave rounding residue
      // (weights rarely sum to 1.0 in floating point).
      survival.Set(o, --remaining[o] == 0 ? 0.0 : 1.0 - cum[o]);
    }
    for (size_t k = idx; k < end; ++k) {
      pi[locs[k].owner] += locs[k].weight * survival.ProductExcluding(locs[k].owner);
    }
    idx = end;
  }

  std::vector<Quantification> out;
  for (size_t i = 0; i < n; ++i) {
    if (pi[i] > 0) out.push_back({static_cast<int>(i), pi[i]});
  }
  return out;
}

std::vector<Quantification> QuantifyNumericContinuous(const UncertainSet& points,
                                                      Point2 q, double tol) {
  size_t n = points.size();
  double min_max = std::numeric_limits<double>::infinity();
  for (const auto& p : points) min_max = std::min(min_max, p.MaxDistance(q));

  std::vector<Quantification> out;
  for (size_t i = 0; i < n; ++i) {
    PNN_CHECK_MSG(!points[i].is_discrete(),
                  "QuantifyNumericContinuous needs continuous points");
    double lo = points[i].MinDistance(q);
    double hi = std::min(points[i].MaxDistance(q), min_max);
    if (lo >= hi) continue;  // pi_i = 0: support starts beyond Delta(q).
    auto integrand = [&](double r) {
      double g = points[i].DistancePdf(q, r);
      if (g <= 0) return 0.0;
      double prod = 1.0;
      for (size_t j = 0; j < n && prod > 0; ++j) {
        if (j == i) continue;
        prod *= 1.0 - points[j].DistanceCdf(q, r);
      }
      return g * prod;
    };
    double v = AdaptiveSimpson(integrand, lo, hi, tol / 4);
    if (v > tol) out.push_back({static_cast<int>(i), std::min(v, 1.0)});
  }
  return out;
}

std::vector<Quantification> QuantifyPrefixSweep(const std::vector<WeightedLocation>& locs,
                                                const std::vector<int>& counts) {
  std::vector<Quantification> out;
  QuantifyPrefixSweepInto(locs, counts, &out);
  return out;
}

void QuantifyPrefixSweepInto(const std::vector<WeightedLocation>& locs,
                             const std::vector<int>& counts,
                             std::vector<Quantification>* out) {
  // The same tie-grouped sweep as the exact quantifier, restricted to the
  // retrieved prefix. Kept bit-for-bit in sync with its former inline copy
  // in spiral.cc: the dynamic engine merges per-bucket streams into the
  // identical global distance order and must reproduce identical doubles.
  size_t n = counts.size();
  util::ScratchVec<double> pi_lease, cum_lease, survival_lease, gather_lease;
  util::ScratchVec<int> seen_lease, touched_lease;
  std::vector<double>& pi = *pi_lease;
  std::vector<double>& cum = *cum_lease;
  // Survival factors with zero tracking (small n per query: direct scan).
  std::vector<double>& survival = *survival_lease;
  std::vector<double>& gather = *gather_lease;
  std::vector<int>& seen = *seen_lease;
  std::vector<int>& touched = *touched_lease;
  pi.assign(n, 0.0);
  cum.assign(n, 0.0);
  survival.assign(n, 1.0);
  seen.assign(n, 0);
  touched.clear();
  size_t idx = 0;
  while (idx < locs.size()) {
    size_t end = idx;
    while (end < locs.size() && locs[end].dist == locs[idx].dist) ++end;
    for (size_t k = idx; k < end; ++k) {
      int o = locs[k].owner;
      if (cum[o] == 0.0) touched.push_back(o);
      cum[o] += locs[k].weight;
      // Exactly 0 once all of o's locations are retrieved (no rounding
      // residue; see QuantifyExactDiscrete above).
      survival[o] = (++seen[o] == counts[o]) ? 0.0 : std::max(0.0, 1.0 - cum[o]);
    }
    for (size_t k = idx; k < end; ++k) {
      int o = locs[k].owner;
      double prod;
      if (touched.size() < kProductKernelMin) {
        // Sequential product: this is the bit-exact historical path, kept
        // for the short prefixes where kernel setup outweighs the scan.
        prod = 1.0;
        for (int j : touched) {
          if (j == o) continue;
          prod *= survival[j];
          if (prod == 0.0) break;
        }
      } else {
        // Gather the touched survivals (skipping the owner) into a dense
        // SoA buffer and let the product kernel reduce it. The kernel may
        // reassociate — the 1e-9 differential contract in docs/simd.md;
        // dropping the early zero-exit is value-neutral (factors live in
        // [0, 1], and 0 annihilates exactly).
        gather.clear();
        for (int j : touched) {
          if (j != o) gather.push_back(survival[j]);
        }
        prod = simd::Product(gather.data(), gather.size());
      }
      pi[o] += locs[k].weight * prod;
    }
    idx = end;
  }

  out->clear();
  for (int o : touched) {
    if (pi[o] > 0) out->push_back({o, pi[o]});
  }
  std::sort(out->begin(), out->end(),
            [](const Quantification& a, const Quantification& b) {
              return a.index < b.index;
            });
}

double SurvivalProfile::Value(double r) const {
  auto it = std::upper_bound(dists.begin(), dists.end(), r);
  if (it == dists.begin()) return 1.0;
  return values[static_cast<size_t>(it - dists.begin()) - 1];
}

PartialQuantify QuantifyPartDiscrete(const UncertainSet& points,
                                     const std::vector<int>& members, Point2 q) {
  size_t n = members.size();
  std::vector<Loc> locs;
  for (size_t m = 0; m < n; ++m) {
    const UncertainPoint& p = points[members[m]];
    PNN_CHECK_MSG(p.is_discrete(), "QuantifyPartDiscrete needs discrete points");
    const auto& d = p.discrete();
    for (size_t s = 0; s < d.locations.size(); ++s) {
      locs.push_back({Distance(q, d.locations[s]), static_cast<int>(m), d.weights[s]});
    }
  }
  std::sort(locs.begin(), locs.end(),
            [](const Loc& a, const Loc& b) { return a.dist < b.dist; });

  std::vector<double> cum(n, 0.0);
  std::vector<int> remaining(n, 0);
  for (const Loc& l : locs) ++remaining[l.owner];
  SurvivalProduct survival(n);

  PartialQuantify out;
  out.terms.reserve(locs.size());
  size_t idx = 0;
  while (idx < locs.size()) {
    size_t end = idx;
    while (end < locs.size() && locs[end].dist == locs[idx].dist) ++end;
    for (size_t k = idx; k < end; ++k) {
      int o = locs[k].owner;
      cum[o] += locs[k].weight;
      survival.Set(o, --remaining[o] == 0 ? 0.0 : 1.0 - cum[o]);
    }
    for (size_t k = idx; k < end; ++k) {
      out.terms.push_back({locs[k].dist, locs[k].owner,
                           locs[k].weight * survival.ProductExcluding(locs[k].owner)});
    }
    out.profile.dists.push_back(locs[idx].dist);
    out.profile.values.push_back(survival.ProductAll());
    idx = end;
  }
  return out;
}

std::vector<Quantification> ThresholdFilter(const std::vector<Quantification>& all,
                                            double tau) {
  std::vector<Quantification> out;
  for (const auto& e : all) {
    if (e.probability > tau) out.push_back(e);
  }
  return out;
}

int MostLikelyNN(const std::vector<Quantification>& all) {
  int best = -1;
  double bp = -1.0;
  for (const auto& e : all) {
    if (e.probability > bp) {
      bp = e.probability;
      best = e.index;
    }
  }
  return best;
}

}  // namespace pnn
