// The nonzero Voronoi diagram V!=0(P) for disk uncertainty regions
// (Section 2.1, Theorems 2.5 and 2.11).
//
// V!=0(P) is the arrangement A(Gamma) of the curves gamma_i, each built as
// a polar lower envelope (Lemma 2.2). The diagram is computed inside a
// clipping box (configurable; defaults to a generous window around the
// data); all complexity counters exclude box artifacts so they measure the
// diagram itself. Faces carry NN!=0 labels in diff-tree storage and
// queries are answered by point location (Theorem 2.11).

#ifndef PNN_CORE_V0_NONZERO_VORONOI_H_
#define PNN_CORE_V0_NONZERO_VORONOI_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/arrangement/arrangement.h"
#include "src/core/gamma/gamma_curves.h"
#include "src/core/v0/labeled_subdivision.h"
#include "src/geometry/circle.h"

namespace pnn {

/// Complexity counters for a nonzero Voronoi diagram (box artifacts
/// excluded; this is what Theorems 2.5-2.14 bound).
struct V0Complexity {
  size_t vertices = 0;     // Diagram vertices strictly inside the box.
  size_t edges = 0;        // Non-box edges.
  size_t faces = 0;        // Interior faces.
  size_t breakpoints = 0;  // Envelope breakpoints over all gamma_i.
  size_t crossings = 0;    // Vertices where two distinct curves meet.
};

/// Nonzero Voronoi diagram of disk-shaped uncertainty regions.
class NonzeroVoronoi {
 public:
  /// Builds V!=0 for the given disks, clipped to `box` (or an automatic
  /// window ~2 diagonals around the data when omitted).
  explicit NonzeroVoronoi(const std::vector<Circle>& disks,
                          std::optional<Box2> box = std::nullopt);

  /// NN!=0(q) as sorted indices. Queries outside the box fall back to the
  /// Lemma 2.1 linear scan (correct, just not sublinear).
  std::vector<int> Query(Point2 q) const;

  const V0Complexity& complexity() const { return complexity_; }
  const Arrangement& arrangement() const { return *arrangement_; }
  const LabeledSubdivision& labels() const { return *labels_; }
  const std::vector<GammaCurve>& gamma() const { return gamma_; }
  const Box2& box() const { return arrangement_->box(); }

  /// Validates every face label against the Lemma 2.1 brute force.
  /// Mismatched elements whose delta_i sits within relative 1e-7 of
  /// Delta at the face sample are tolerated (the sample lies on a curve
  /// up to numerical precision).
  bool Validate() const;

 private:
  std::vector<int> ExpandDuplicates(std::vector<int> label) const;

  std::vector<Circle> disks_;        // Original input.
  std::vector<Circle> unique_disks_; // Deduplicated (coincident disks share
                                     // identical gamma curves, which would
                                     // violate general position).
  std::vector<int> rep_of_;          // Input index -> unique index.
  std::vector<std::vector<int>> group_of_;  // Unique index -> input indices.
  std::vector<GammaCurve> gamma_;
  std::unique_ptr<Arrangement> arrangement_;
  std::unique_ptr<LabeledSubdivision> labels_;
  V0Complexity complexity_;
};

/// Nonzero Voronoi diagram for discrete distributions (Theorem 2.14).
/// gamma_i is polygonal: the boundary of the union of the convex dominance
/// polygons K_iu = { x : delta_i(x) >= Delta_u(x) } (via the
/// linearization of Lemma 2.12/2.13).
class NonzeroVoronoiDiscrete {
 public:
  /// `points[i]` is the location multiset of uncertain point P_i.
  explicit NonzeroVoronoiDiscrete(const std::vector<std::vector<Point2>>& points,
                                  std::optional<Box2> box = std::nullopt);

  std::vector<int> Query(Point2 q) const;

  const V0Complexity& complexity() const { return complexity_; }
  const Arrangement& arrangement() const { return *arrangement_; }
  /// Same tolerance semantics as NonzeroVoronoi::Validate().
  bool Validate() const;

 private:
  std::vector<std::vector<Point2>> points_;
  std::unique_ptr<Arrangement> arrangement_;
  std::unique_ptr<LabeledSubdivision> labels_;
  V0Complexity complexity_;
};

/// Counts vertices/edges/faces of an arrangement excluding box artifacts
/// and classifies vertices into breakpoints vs curve crossings.
V0Complexity CountComplexity(const Arrangement& arr, size_t breakpoints);

}  // namespace pnn

#endif  // PNN_CORE_V0_NONZERO_VORONOI_H_
