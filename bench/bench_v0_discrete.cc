// E6 — Theorem 2.14: for discrete distributions of size k, V!=0 has
// O(k n^3) complexity (built in O(n^2 log n + mu) expected time).
//
// Sweeps n at fixed k and k at fixed n; the growth exponent in n on
// random instances again sits far below the worst case, while the k-sweep
// shows the linear factor.

#include <cstdio>
#include <vector>

#include "src/core/v0/nonzero_voronoi.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/util/timer.h"
#include "src/workload/generators.h"

namespace pnn {
namespace {

void SweepN() {
  std::printf("\n### n sweep (k = 3)\n\n");
  Table table({"n", "k", "vertices", "edges", "faces", "k*n^3", "build_ms"});
  std::vector<std::pair<double, double>> growth;
  for (int n : {6, 12, 24, 48}) {
    Rng rng(13 + n);
    double span = 4.0 * std::sqrt(static_cast<double>(n));
    auto locs = RandomDiscreteLocations(n, 3, span, 2.0, &rng);
    Timer t;
    NonzeroVoronoiDiscrete v0(locs);
    double ms = t.Millis();
    const auto& c = v0.complexity();
    growth.push_back({n, static_cast<double>(std::max<size_t>(c.vertices, 1))});
    table.AddRow({Table::Int(n), Table::Int(3), Table::Int(c.vertices),
                  Table::Int(c.edges), Table::Int(c.faces),
                  Table::Int(3LL * n * n * n), Table::Num(ms, 4)});
  }
  table.Print();
  std::printf("\nfitted growth exponent in n: %.2f (paper bound: <= 3)\n",
              LogLogSlope(growth));
}

void SweepK() {
  std::printf("\n### k sweep (n = 12)\n\n");
  Table table({"n", "k", "vertices", "edges", "faces", "build_ms"});
  std::vector<std::pair<double, double>> growth;
  for (int k : {2, 3, 4, 6, 8}) {
    Rng rng(17 + k);
    auto locs = RandomDiscreteLocations(12, k, 14, 2.0, &rng);
    Timer t;
    NonzeroVoronoiDiscrete v0(locs);
    double ms = t.Millis();
    const auto& c = v0.complexity();
    growth.push_back({k, static_cast<double>(std::max<size_t>(c.vertices, 1))});
    table.AddRow({Table::Int(12), Table::Int(k), Table::Int(c.vertices),
                  Table::Int(c.edges), Table::Int(c.faces), Table::Num(ms, 4)});
  }
  table.Print();
  std::printf("\nfitted growth exponent in k: %.2f (paper bound: <= 1)\n",
              LogLogSlope(growth));
}

}  // namespace
}  // namespace pnn

int main() {
  std::printf("# E6 (Theorem 2.14): discrete V!=0 complexity O(k n^3)\n");
  pnn::SweepN();
  pnn::SweepK();
  return 0;
}
