#include "src/util/alloc_hook.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace pnn {
namespace util {

namespace {
std::atomic<int64_t> g_alloc_count{0};
std::atomic<int64_t> g_live_bytes{0};
std::atomic<int64_t> g_peak_bytes{0};

// Every allocation is prefixed by a header that records the requested
// size, so the delete side can subtract it from the live-byte counter
// without a side table. The header is at least max_align_t-sized (keeps
// the user pointer suitably aligned for plain new) and at least the
// requested alignment for the align_val_t overloads; the size itself is
// always stored in the word immediately before the user pointer, which
// both free paths can read uniformly.
constexpr std::size_t kHeader = alignof(std::max_align_t) < sizeof(std::size_t)
                                    ? sizeof(std::size_t)
                                    : alignof(std::max_align_t);

void RecordAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  int64_t now =
      g_live_bytes.fetch_add(static_cast<int64_t>(size), std::memory_order_relaxed) +
      static_cast<int64_t>(size);
  int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (now > peak &&
         !g_peak_bytes.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void StampSize(void* user, std::size_t size) {
  *(reinterpret_cast<std::size_t*>(user) - 1) = size;
}

void* CountedAlloc(std::size_t size) {
  // The header addition must not wrap: operator new of a size that
  // overflowed (e.g. a huge new[] count, where the ABI passes SIZE_MAX)
  // has to surface as bad_alloc, not as a tiny wrapped malloc.
  if (size > SIZE_MAX - kHeader) throw std::bad_alloc();
  void* base = std::malloc(size + kHeader);
  if (base == nullptr) throw std::bad_alloc();
  void* user = static_cast<char*>(base) + kHeader;
  StampSize(user, size);
  RecordAlloc(size);
  return user;
}

void CountedFree(void* user) {
  if (user == nullptr) return;
  std::size_t size = *(reinterpret_cast<std::size_t*>(user) - 1);
  g_live_bytes.fetch_sub(static_cast<int64_t>(size), std::memory_order_relaxed);
  std::free(static_cast<char*>(user) - kHeader);
}

// Header size for over-aligned allocations: a multiple of the alignment
// that fits kHeader, so base + header stays `align`-aligned.
std::size_t AlignedHeader(std::size_t align) {
  return (std::max(kHeader, align) + align - 1) / align * align;
}

void* CountedAllocAligned(std::size_t size, std::size_t align) {
  std::size_t header = AlignedHeader(align);
  if (size > SIZE_MAX - header - align) throw std::bad_alloc();
  // aligned_alloc requires the total size to be a multiple of the alignment.
  std::size_t total = (size + header + align - 1) / align * align;
  void* base = std::aligned_alloc(align, total);
  if (base == nullptr) throw std::bad_alloc();
  void* user = static_cast<char*>(base) + header;
  StampSize(user, size);
  RecordAlloc(size);
  return user;
}

void CountedFreeAligned(void* user, std::size_t align) {
  if (user == nullptr) return;
  std::size_t size = *(reinterpret_cast<std::size_t*>(user) - 1);
  g_live_bytes.fetch_sub(static_cast<int64_t>(size), std::memory_order_relaxed);
  std::free(static_cast<char*>(user) - AlignedHeader(align));
}
}  // namespace

int64_t AllocationCount() { return g_alloc_count.load(std::memory_order_relaxed); }

int64_t LiveAllocatedBytes() { return g_live_bytes.load(std::memory_order_relaxed); }

int64_t PeakAllocatedBytes() { return g_peak_bytes.load(std::memory_order_relaxed); }

void ResetPeakAllocatedBytes() {
  g_peak_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

}  // namespace util
}  // namespace pnn

// Global replacements (dormant unless this TU is linked in; see header).
// Every form forwards to the counted malloc/free wrappers so the whole
// family stays consistent.
void* operator new(std::size_t size) { return pnn::util::CountedAlloc(size); }
void* operator new[](std::size_t size) { return pnn::util::CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return pnn::util::CountedAlloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return pnn::util::CountedAlloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t size, std::align_val_t align) {
  return pnn::util::CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return pnn::util::CountedAllocAligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { pnn::util::CountedFree(p); }
void operator delete[](void* p) noexcept { pnn::util::CountedFree(p); }
void operator delete(void* p, std::size_t) noexcept { pnn::util::CountedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { pnn::util::CountedFree(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  pnn::util::CountedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  pnn::util::CountedFree(p);
}
void operator delete(void* p, std::align_val_t align) noexcept {
  pnn::util::CountedFreeAligned(p, static_cast<std::size_t>(align));
}
void operator delete[](void* p, std::align_val_t align) noexcept {
  pnn::util::CountedFreeAligned(p, static_cast<std::size_t>(align));
}
void operator delete(void* p, std::size_t, std::align_val_t align) noexcept {
  pnn::util::CountedFreeAligned(p, static_cast<std::size_t>(align));
}
void operator delete[](void* p, std::size_t, std::align_val_t align) noexcept {
  pnn::util::CountedFreeAligned(p, static_cast<std::size_t>(align));
}
