#include "src/dyn/bucket.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace pnn {
namespace dyn {

namespace {

Engine::Options BucketEngineOptions(Engine::Options options) {
  // Per-point stream ids sized for some other point set must not leak into
  // the bucket engine's validation; the dynamic engine maintains id-keyed
  // per-round structures itself (see McRounds).
  options.mc_stream_ids.clear();
  return options;
}

}  // namespace

Bucket::Bucket(std::vector<Id> ids, UncertainSet points, Engine::Options options)
    : ids_(std::move(ids)),
      seed_(options.seed),
      engine_(std::make_unique<Engine>(std::move(points),
                                       BucketEngineOptions(std::move(options)))) {
  PNN_CHECK_MSG(ids_.size() == engine_->points().size(),
                "bucket ids/points size mismatch");
  PNN_CHECK_MSG(std::is_sorted(ids_.begin(), ids_.end()), "bucket ids must ascend");
}

Bucket::Bucket(std::vector<Id> ids, std::unique_ptr<Engine> engine)
    : ids_(std::move(ids)),
      seed_(engine->options().seed),
      engine_(std::move(engine)) {
  PNN_CHECK_MSG(ids_.size() == engine_->points().size(),
                "bucket ids/points size mismatch");
  PNN_CHECK_MSG(std::is_sorted(ids_.begin(), ids_.end()), "bucket ids must ascend");
}

SlicedBucketBuilder::SlicedBucketBuilder(std::vector<Id> ids, UncertainSet points,
                                         Engine::Options options, size_t chunk)
    : ids_(std::move(ids)),
      builder_(std::move(points), BucketEngineOptions(std::move(options)), chunk) {}

std::shared_ptr<const Bucket> SlicedBucketBuilder::Finish() {
  return std::make_shared<const Bucket>(std::move(ids_), builder_.Finish());
}

int Bucket::LocalIndex(Id id) const {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) return -1;
  return static_cast<int>(it - ids_.begin());
}

std::shared_ptr<const McRounds> Bucket::EnsureRounds(size_t rounds,
                                                     exec::ThreadPool* pool) const {
  auto cur = std::atomic_load_explicit(&mc_, std::memory_order_acquire);
  if (cur && cur->trees.size() >= rounds) return cur;
  std::lock_guard<std::mutex> lock(mc_mu_);
  cur = std::atomic_load_explicit(&mc_, std::memory_order_acquire);
  if (cur && cur->trees.size() >= rounds) return cur;

  auto next = std::make_shared<McRounds>();
  if (cur) next->trees = cur->trees;  // Share the already-built prefix.
  size_t from = next->trees.size();
  next->trees.resize(rounds);
  const UncertainSet& pts = engine_->points();
  auto build_round = [&](size_t r) {
    uint64_t round_seed = SplitSeed(seed_, r);
    std::vector<Point2> samples(pts.size());
    for (size_t j = 0; j < pts.size(); ++j) {
      Rng rng = MakeStreamRng(round_seed, static_cast<uint64_t>(ids_[j]));
      samples[j] = pts[j].Sample(&rng);
    }
    next->trees[r] = std::make_shared<const KdTree>(std::move(samples));
  };
  exec::MaybeParallelFor(pool, rounds - from, [&](size_t i) { build_round(from + i); });
  std::atomic_store_explicit(&mc_, std::shared_ptr<const McRounds>(next),
                             std::memory_order_release);
  return next;
}

}  // namespace dyn
}  // namespace pnn
