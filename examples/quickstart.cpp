// Quickstart: build an engine over a few uncertain points and run every
// query mode — first through the unified pnn::api request/response
// surface, then over the wire against an in-process pnn::serve server.
//
//   ./examples/quickstart

#include <cstdio>

#include "src/api/engine_ref.h"
#include "src/api/query.h"
#include "src/core/pnn.h"
#include "src/serve/client.h"
#include "src/serve/server.h"

int main() {
  using namespace pnn;

  // Three uncertain points: a GPS ping with disk uncertainty, a sensor
  // with Gaussian noise truncated to its range, and a discrete histogram
  // of possible locations.
  UncertainSet points;
  points.push_back(UncertainPoint::UniformDisk({0.0, 0.0}, 2.0));
  points.push_back(UncertainPoint::TruncatedGaussian({6.0, 1.0}, 3.0, 1.0));
  points.push_back(UncertainPoint::Discrete({{2.0, 5.0}, {3.0, 6.0}, {2.5, 7.0}},
                                            {0.5, 0.3, 0.2}));

  Engine engine(std::move(points));
  Point2 q{3.0, 2.0};

  // Every backend (Engine, dyn::DynamicEngine, shard::ShardedEngine)
  // answers the same five query kinds behind one type-erased handle.
  api::EngineRef ref(&engine);

  // 1. Which points can possibly be the nearest neighbor? (Lemma 2.1)
  api::QueryResponse r = ref.Call(api::QueryRequest::NonzeroNN(q));
  std::printf("NN!=0(q) = { ");
  for (int i : r.ids) std::printf("P%d ", i);
  std::printf("}\n");

  // 2. With what probability is each the nearest? (Section 4, additive
  //    error 0.02 here).
  r = ref.Call(api::QueryRequest::Quantify(q, 0.02));
  for (const auto& [index, probability] : r.quants) {
    std::printf("pi_%d(q) ~ %.3f\n", index, probability);
  }

  // 3. Derived queries.
  r = ref.Call(api::QueryRequest::MostLikelyNN(q, 0.02));
  std::printf("most likely NN: P%d\n", r.id);
  r = ref.Call(api::QueryRequest::ThresholdNN(q, 0.25, 0.02));
  std::printf("points with pi > 0.25:");
  for (const auto& e : r.quants) std::printf(" P%d", e.index);
  std::printf("\nexpected-distance NN ([AESZ12] semantics): P%d\n",
              engine.ExpectedDistanceNN(q));

  // 4. The same engine served over loopback TCP: serve::Server batches
  //    concurrent requests into the engine; serve::Client speaks the
  //    length-prefixed binary protocol (docs/protocol.md).
  serve::Server server(ref);
  if (!server.Start()) {
    std::fprintf(stderr, "server failed to start\n");
    return 1;
  }
  serve::Client client;
  if (!client.Connect(server.port())) {
    std::fprintf(stderr, "client failed to connect\n");
    return 1;
  }
  api::QueryRequest req = api::QueryRequest::Quantify(q, 0.02);
  req.deadline_micros = 100000;  // 100ms budget; late answers say so.
  if (auto resp = client.Call(req); resp && resp->ok()) {
    std::printf("over the wire: pi_%d(q) ~ %.3f (server time %.0f us)\n",
                resp->quants[0].index, resp->quants[0].probability,
                resp->server_micros);
  }
  server.Stop();
  return 0;
}
