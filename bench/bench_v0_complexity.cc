// E1 — Theorem 2.5: the nonzero Voronoi diagram of n disks has O(n^3)
// complexity and is built in O(n^2 log n + mu) expected time.
//
// Prints complexity counters and build times over n for three regimes
// (sparse random, dense random, clustered). Random instances sit far
// below the cubic worst case (near-linear here); the cubic behaviour is
// exercised by bench_v0_lowerbound.

#include <cstdio>
#include <vector>

#include "src/core/v0/nonzero_voronoi.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/util/timer.h"
#include "src/workload/generators.h"

namespace pnn {
namespace {

void RunRegime(const char* name, double span_per_sqrt_n, double rmin, double rmax,
               int clusters) {
  std::printf("\n### V!=0 complexity, %s regime\n\n", name);
  Table table({"n", "vertices", "edges", "faces", "breakpoints", "crossings",
               "build_ms", "n^3 bound"});
  std::vector<std::pair<double, double>> growth;
  for (int n : {10, 20, 40, 80, 120, 160}) {
    Rng rng(42 + n);
    double span = span_per_sqrt_n * std::sqrt(static_cast<double>(n));
    std::vector<Circle> disks =
        clusters > 0 ? ClusteredDisks(n, clusters, span, rmax, &rng)
                     : RandomDisks(n, span, rmin, rmax, &rng);
    Timer t;
    NonzeroVoronoi v0(disks);
    double ms = t.Millis();
    const auto& c = v0.complexity();
    growth.push_back({n, static_cast<double>(std::max<size_t>(c.vertices, 1))});
    table.AddRow({Table::Int(n), Table::Int(c.vertices), Table::Int(c.edges),
                  Table::Int(c.faces), Table::Int(c.breakpoints),
                  Table::Int(c.crossings), Table::Num(ms, 4),
                  Table::Int(static_cast<long long>(n) * n * n)});
  }
  table.Print();
  std::printf("\nfitted growth exponent (log-log slope): %.2f (paper: <= 3)\n",
              LogLogSlope(growth));
}

}  // namespace
}  // namespace pnn

int main() {
  std::printf("# E1 (Theorem 2.5): complexity of V!=0(P) for disk regions\n");
  std::printf("Claim: O(n^3) worst case; random inputs are far below the bound.\n");
  pnn::RunRegime("sparse random", 6.0, 0.5, 2.0, 0);
  pnn::RunRegime("dense random", 2.0, 0.5, 3.0, 0);
  pnn::RunRegime("clustered", 5.0, 5, 0.5, 1.5);
  return 0;
}
