#include "src/arrangement/arrangement.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/util/check.h"

namespace pnn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Dsu {
  std::vector<int> parent;
  explicit Dsu(int n) : parent(n) { std::iota(parent.begin(), parent.end(), 0); }
  int Find(int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void Unite(int a, int b) { parent[Find(a)] = Find(b); }
};

// An arc piece kept after clipping, with authoritative endpoint coords
// (snapped onto the box border where applicable).
struct Piece {
  Arc arc;
  Point2 p_start, p_end;
  Box2 bounds;
};

// Split record along a piece.
struct Cut {
  double t;
  Point2 p;
};

}  // namespace

long long HashCell(long long cx, long long cy) { return cx * 0x9E3779B97F4A7C15LL + cy; }

int Arrangement::AddVertex(Point2 p) {
  long long cx = static_cast<long long>(std::floor(p.x / snap_eps_));
  long long cy = static_cast<long long>(std::floor(p.y / snap_eps_));
  for (long long dx = -1; dx <= 1; ++dx) {
    for (long long dy = -1; dy <= 1; ++dy) {
      auto it = vertex_hash_.find(HashCell(cx + dx, cy + dy));
      if (it == vertex_hash_.end()) continue;
      for (int v : it->second) {
        Point2 q = vertices_[v].p;
        if (std::abs(q.x - p.x) <= snap_eps_ && std::abs(q.y - p.y) <= snap_eps_) {
          return v;
        }
      }
    }
  }
  int id = static_cast<int>(vertices_.size());
  vertices_.push_back({p});
  vertex_hash_[HashCell(cx, cy)].push_back(id);
  return id;
}

Arrangement::Arrangement(const std::vector<Arc>& arcs, const Box2& clip_box) {
  box_ = clip_box;
  snap_eps_ = 1e-9 * std::max(1.0, box_.Diagonal());
  const double param_tol = 1e-11;

  // ---- Step 1: clip arcs to the box; collect border split points.
  std::vector<Piece> pieces;
  // Splits on each border: left (x=xmin, param y), right, bottom (y=ymin,
  // param x), top.
  std::array<std::vector<double>, 4> border_splits;
  auto snap_to_border = [&](Point2* p) {
    if (std::abs(p->x - box_.xmin) <= snap_eps_) p->x = box_.xmin;
    if (std::abs(p->x - box_.xmax) <= snap_eps_) p->x = box_.xmax;
    if (std::abs(p->y - box_.ymin) <= snap_eps_) p->y = box_.ymin;
    if (std::abs(p->y - box_.ymax) <= snap_eps_) p->y = box_.ymax;
    if (p->x == box_.xmin) border_splits[0].push_back(p->y);
    if (p->x == box_.xmax) border_splits[1].push_back(p->y);
    if (p->y == box_.ymin) border_splits[2].push_back(p->x);
    if (p->y == box_.ymax) border_splits[3].push_back(p->x);
  };

  for (const Arc& arc : arcs) {
    PNN_CHECK(arc.curve_id >= 0);
    std::vector<double> ps = {arc.t0, arc.t1};
    arc.VerticalLineHits(box_.xmin, &ps);
    arc.VerticalLineHits(box_.xmax, &ps);
    arc.HorizontalLineHits(box_.ymin, &ps);
    arc.HorizontalLineHits(box_.ymax, &ps);
    std::sort(ps.begin(), ps.end());
    ps.erase(std::remove_if(ps.begin(), ps.end(),
                            [&](double t) { return t < arc.t0 || t > arc.t1; }),
             ps.end());
    for (size_t i = 0; i + 1 < ps.size(); ++i) {
      if (ps[i + 1] - ps[i] < param_tol) continue;
      Point2 mid = arc.Eval(0.5 * (ps[i] + ps[i + 1]));
      if (!box_.Contains(mid)) continue;
      Piece piece;
      piece.arc = arc.SubArc(ps[i], ps[i + 1]);
      piece.p_start = arc.Eval(ps[i]);
      piece.p_end = arc.Eval(ps[i + 1]);
      snap_to_border(&piece.p_start);
      snap_to_border(&piece.p_end);
      piece.bounds = piece.arc.Bounds().Inflated(snap_eps_);
      pieces.push_back(std::move(piece));
    }
  }

  // ---- Step 2: box border arcs, split at the recorded points.
  {
    struct Border {
      Point2 a, b;
      bool horizontal;
    };
    const Border borders[4] = {
        {{box_.xmin, box_.ymin}, {box_.xmin, box_.ymax}, false},  // Left.
        {{box_.xmax, box_.ymin}, {box_.xmax, box_.ymax}, false},  // Right.
        {{box_.xmin, box_.ymin}, {box_.xmax, box_.ymin}, true},   // Bottom.
        {{box_.xmin, box_.ymax}, {box_.xmax, box_.ymax}, true},   // Top.
    };
    for (int s = 0; s < 4; ++s) {
      auto& splits = border_splits[s];
      splits.push_back(borders[s].horizontal ? borders[s].a.x : borders[s].a.y);
      splits.push_back(borders[s].horizontal ? borders[s].b.x : borders[s].b.y);
      std::sort(splits.begin(), splits.end());
      splits.erase(std::unique(splits.begin(), splits.end(),
                               [&](double a, double b) { return b - a <= snap_eps_; }),
                   splits.end());
      for (size_t i = 0; i + 1 < splits.size(); ++i) {
        Point2 a = borders[s].horizontal ? Point2{splits[i], borders[s].a.y}
                                         : Point2{borders[s].a.x, splits[i]};
        Point2 b = borders[s].horizontal ? Point2{splits[i + 1], borders[s].a.y}
                                         : Point2{borders[s].a.x, splits[i + 1]};
        Piece piece;
        piece.arc = Arc::Segment(a, b, kBoxCurveId);
        piece.p_start = a;
        piece.p_end = b;
        piece.bounds = piece.arc.Bounds().Inflated(snap_eps_);
        pieces.push_back(std::move(piece));
      }
    }
  }

  // ---- Step 3: pairwise intersections (grid-accelerated).
  size_t np = pieces.size();
  std::vector<std::vector<Cut>> cuts(np);
  {
    int cells = std::clamp(static_cast<int>(std::sqrt(double(np) / 2) + 1), 4, 256);
    double cw = std::max(box_.Width(), 1e-30) / cells;
    double ch = std::max(box_.Height(), 1e-30) / cells;
    std::vector<std::vector<int>> grid(static_cast<size_t>(cells) * cells);
    auto cell_range = [&](const Box2& b, int* x0, int* x1, int* y0, int* y1) {
      *x0 = std::clamp(static_cast<int>((b.xmin - box_.xmin) / cw), 0, cells - 1);
      *x1 = std::clamp(static_cast<int>((b.xmax - box_.xmin) / cw), 0, cells - 1);
      *y0 = std::clamp(static_cast<int>((b.ymin - box_.ymin) / ch), 0, cells - 1);
      *y1 = std::clamp(static_cast<int>((b.ymax - box_.ymin) / ch), 0, cells - 1);
    };
    for (size_t i = 0; i < np; ++i) {
      int x0, x1, y0, y1;
      cell_range(pieces[i].bounds, &x0, &x1, &y0, &y1);
      for (int x = x0; x <= x1; ++x) {
        for (int y = y0; y <= y1; ++y) {
          grid[static_cast<size_t>(x) * cells + y].push_back(static_cast<int>(i));
        }
      }
    }
    std::vector<std::pair<int, int>> pairs;
    for (const auto& bucket : grid) {
      for (size_t a = 0; a < bucket.size(); ++a) {
        for (size_t b = a + 1; b < bucket.size(); ++b) {
          int i = std::min(bucket[a], bucket[b]);
          int j = std::max(bucket[a], bucket[b]);
          const Piece& pi = pieces[i];
          const Piece& pj = pieces[j];
          if (pi.arc.curve_id == pj.arc.curve_id) continue;
          if (!pi.bounds.Intersects(pj.bounds)) continue;
          pairs.push_back({i, j});
        }
      }
    }
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    std::vector<Point2> hits;
    for (auto [i, j] : pairs) {
      hits.clear();
      IntersectArcs(pieces[i].arc, pieces[j].arc, &hits);
      for (Point2 p : hits) {
        double ti = std::clamp(pieces[i].arc.ParamOf(p), pieces[i].arc.t0,
                               pieces[i].arc.t1);
        double tj = std::clamp(pieces[j].arc.ParamOf(p), pieces[j].arc.t0,
                               pieces[j].arc.t1);
        cuts[i].push_back({ti, p});
        cuts[j].push_back({tj, p});
      }
    }
  }

  // ---- Step 4: split pieces into edges; merge endpoints into vertices.
  for (size_t i = 0; i < np; ++i) {
    const Piece& piece = pieces[i];
    auto& cs = cuts[i];
    cs.push_back({piece.arc.t0, piece.p_start});
    cs.push_back({piece.arc.t1, piece.p_end});
    std::sort(cs.begin(), cs.end(), [](const Cut& a, const Cut& b) { return a.t < b.t; });
    // Merge cuts that coincide (same parameter or same point).
    std::vector<Cut> merged;
    for (const Cut& c : cs) {
      if (!merged.empty() &&
          (c.t - merged.back().t < param_tol ||
           (std::abs(c.p.x - merged.back().p.x) <= snap_eps_ &&
            std::abs(c.p.y - merged.back().p.y) <= snap_eps_))) {
        continue;
      }
      merged.push_back(c);
    }
    for (size_t k = 0; k + 1 < merged.size(); ++k) {
      int v0 = AddVertex(merged[k].p);
      int v1 = AddVertex(merged[k + 1].p);
      if (v0 == v1) continue;
      Edge e;
      e.geom = piece.arc.SubArc(merged[k].t, merged[k + 1].t);
      e.v0 = v0;
      e.v1 = v1;
      e.curve_id = piece.arc.curve_id;
      edges_.push_back(std::move(e));
    }
  }

  // ---- Step 5: angular order of half-edges; next pointers.
  size_t nh = 2 * edges_.size();
  next_.assign(nh, -1);
  std::vector<std::vector<int>> outgoing(vertices_.size());
  for (size_t e = 0; e < edges_.size(); ++e) {
    outgoing[edges_[e].v0].push_back(static_cast<int>(2 * e));
    outgoing[edges_[e].v1].push_back(static_cast<int>(2 * e + 1));
  }
  auto out_dir = [&](int h) -> Vec2 {
    const Edge& e = edges_[h >> 1];
    Vec2 t = (h & 1) ? -e.geom.Tangent(e.geom.t1) : e.geom.Tangent(e.geom.t0);
    return t;
  };
  auto chord_dir = [&](int h) -> Vec2 {
    const Edge& e = edges_[h >> 1];
    double span = e.geom.t1 - e.geom.t0;
    double t = (h & 1) ? e.geom.t1 - 0.05 * span : e.geom.t0 + 0.05 * span;
    Point2 origin = vertices_[HalfEdgeOrigin(h)].p;
    return e.geom.Eval(t) - origin;
  };
  std::vector<int> rank(nh, -1);
  for (size_t v = 0; v < vertices_.size(); ++v) {
    auto& out = outgoing[v];
    std::vector<std::pair<double, int>> keyed;
    keyed.reserve(out.size());
    for (int h : out) keyed.push_back({Angle(out_dir(h)), h});
    std::sort(keyed.begin(), keyed.end());
    // Tie-break near-equal tangents by chord direction.
    for (size_t a = 0; a < keyed.size();) {
      size_t b = a + 1;
      while (b < keyed.size() && keyed[b].first - keyed[a].first < 1e-7) ++b;
      if (b - a > 1) {
        std::sort(keyed.begin() + a, keyed.begin() + b,
                  [&](const std::pair<double, int>& x, const std::pair<double, int>& y) {
                    return Angle(chord_dir(x.second)) < Angle(chord_dir(y.second));
                  });
      }
      a = b;
    }
    for (size_t k = 0; k < keyed.size(); ++k) {
      out[k] = keyed[k].second;
      rank[out[k]] = static_cast<int>(k);
    }
  }
  for (size_t h = 0; h < nh; ++h) {
    int v = HalfEdgeTarget(static_cast<int>(h));
    const auto& out = outgoing[v];
    int twin = static_cast<int>(h ^ 1);
    int r = rank[twin];
    PNN_CHECK(r >= 0);
    next_[h] = out[(r - 1 + static_cast<int>(out.size())) % out.size()];
  }

  BuildGrid();
  AssembleFaces();
  ComputeSamples();
}

void Arrangement::BuildGrid() {
  grid_nx_ = grid_ny_ =
      std::clamp(static_cast<int>(std::sqrt(double(edges_.size())) + 1), 4, 512);
  cell_w_ = std::max(box_.Width(), 1e-30) / grid_nx_;
  cell_h_ = std::max(box_.Height(), 1e-30) / grid_ny_;
  grid_.assign(static_cast<size_t>(grid_nx_) * grid_ny_, {});
  for (size_t e = 0; e < edges_.size(); ++e) {
    Box2 b = edges_[e].geom.Bounds().Inflated(snap_eps_);
    int x0 =
        std::clamp(static_cast<int>((b.xmin - box_.xmin) / cell_w_), 0, grid_nx_ - 1);
    int x1 =
        std::clamp(static_cast<int>((b.xmax - box_.xmin) / cell_w_), 0, grid_nx_ - 1);
    int y0 =
        std::clamp(static_cast<int>((b.ymin - box_.ymin) / cell_h_), 0, grid_ny_ - 1);
    int y1 =
        std::clamp(static_cast<int>((b.ymax - box_.ymin) / cell_h_), 0, grid_ny_ - 1);
    for (int x = x0; x <= x1; ++x) {
      for (int y = y0; y <= y1; ++y) {
        grid_[static_cast<size_t>(x) * grid_ny_ + y].push_back(static_cast<int>(e));
      }
    }
  }
}

Arrangement::RayHit Arrangement::ShootUp(Point2 q, int skip_vertex) const {
  RayHit best;
  best.y = kInf;
  if (q.x < box_.xmin || q.x > box_.xmax || q.y > box_.ymax) return best;
  int col = std::clamp(static_cast<int>((q.x - box_.xmin) / cell_w_), 0, grid_nx_ - 1);
  int row0 = std::clamp(static_cast<int>((q.y - box_.ymin) / cell_h_), 0, grid_ny_ - 1);
  std::vector<double> ts;
  for (int row = row0; row < grid_ny_; ++row) {
    double cell_bottom = box_.ymin + row * cell_h_;
    if (best.y < cell_bottom) break;  // Nothing above can beat the best hit.
    for (int e : grid_[static_cast<size_t>(col) * grid_ny_ + row]) {
      const Edge& edge = edges_[e];
      if (skip_vertex >= 0 && (edge.v0 == skip_vertex || edge.v1 == skip_vertex)) {
        continue;
      }
      ts.clear();
      edge.geom.VerticalLineHits(q.x, &ts);
      for (double t : ts) {
        double y = edge.geom.Eval(t).y;
        if (y <= q.y + snap_eps_ || y >= best.y) continue;
        best.edge = e;
        best.param = t;
        best.y = y;
        double span = edge.geom.t1 - edge.geom.t0;
        Vec2 tan = edge.geom.Tangent(t);
        best.degenerate = (t - edge.geom.t0 < 1e-7 * span) ||
                          (edge.geom.t1 - t < 1e-7 * span) ||
                          std::abs(tan.x) < 1e-9 * Norm(tan);
      }
    }
  }
  return best;
}

void Arrangement::AssembleFaces() {
  // Trace next-pointer cycles.
  size_t nh = next_.size();
  std::vector<int> cycle_of(nh, -1);
  std::vector<int> cycle_head;
  for (size_t h0 = 0; h0 < nh; ++h0) {
    if (cycle_of[h0] >= 0) continue;
    int c = static_cast<int>(cycle_head.size());
    cycle_head.push_back(static_cast<int>(h0));
    int h = static_cast<int>(h0);
    while (cycle_of[h] < 0) {
      cycle_of[h] = c;
      h = next_[h];
    }
  }
  int nc = static_cast<int>(cycle_head.size());

  // Signed area of each cycle (Green's theorem, sampled per edge).
  std::vector<double> area(nc, 0.0);
  for (size_t h = 0; h < nh; ++h) {
    const Edge& e = edges_[h >> 1];
    const int kSteps = e.geom.type == Arc::Type::kSegment ? 1 : 16;
    double a = 0.0;
    Point2 prev = e.geom.Eval(e.geom.t0);
    for (int s = 1; s <= kSteps; ++s) {
      Point2 cur = e.geom.Eval(e.geom.t0 + (e.geom.t1 - e.geom.t0) * s / kSteps);
      a += (prev.x + cur.x) * 0.5 * (cur.y - prev.y);
      prev = cur;
    }
    if (h & 1) a = -a;
    area[cycle_of[h]] += a;
  }

  // Union-find: attach negative (hole / outer) cycles to the cycle directly
  // above their topmost vertex.
  Dsu dsu(nc);
  std::vector<int> top_vertex(nc, -1);
  for (size_t h = 0; h < nh; ++h) {
    int c = cycle_of[h];
    int v = HalfEdgeOrigin(static_cast<int>(h));
    if (top_vertex[c] < 0 || vertices_[v].p.y > vertices_[top_vertex[c]].p.y) {
      top_vertex[c] = v;
    }
  }
  for (int c = 0; c < nc; ++c) {
    if (area[c] > 0) continue;  // Positive cycles are face outer boundaries.
    Point2 q = vertices_[top_vertex[c]].p;
    RayHit hit;
    bool ok = false;
    for (int attempt = 0; attempt < 7 && !ok; ++attempt) {
      double nudge = attempt == 0 ? 0.0
                                  : ((attempt % 2) ? 1.0 : -1.0) *
                                        std::pow(4.0, (attempt - 1) / 2) * 64 * snap_eps_;
      hit = ShootUp({q.x + nudge, q.y}, top_vertex[c]);
      ok = hit.edge < 0 || !hit.degenerate;
    }
    if (hit.edge < 0) continue;  // Nothing above: belongs to the outer region.
    Vec2 tan = edges_[hit.edge].geom.Tangent(hit.param);
    int under_half = tan.x < 0 ? 2 * hit.edge : 2 * hit.edge + 1;
    dsu.Unite(c, cycle_of[under_half]);
  }

  // One face per component holding exactly one positive cycle; the
  // component(s) with none form the outer face.
  std::vector<int> face_of_comp(nc, -1);
  faces_.clear();
  outer_face_ = -1;
  for (int c = 0; c < nc; ++c) {
    if (area[c] <= 0) continue;
    int comp = dsu.Find(c);
    PNN_CHECK_MSG(face_of_comp[comp] < 0, "two outer boundaries in one face");
    int f = static_cast<int>(faces_.size());
    faces_.push_back({});
    face_of_comp[comp] = f;
  }
  {
    int f = static_cast<int>(faces_.size());
    faces_.push_back({});
    faces_[f].is_outer = true;
    outer_face_ = f;
  }
  std::vector<char> cycle_repr(nc, 0);
  for (size_t h = 0; h < nh; ++h) {
    int c = cycle_of[h];
    int comp = dsu.Find(c);
    int f = face_of_comp[comp] >= 0 ? face_of_comp[comp] : outer_face_;
    Edge& e = edges_[h >> 1];
    if (h & 1) {
      e.face_right = f;
    } else {
      e.face_left = f;
    }
    if (!cycle_repr[c]) {
      cycle_repr[c] = 1;
      faces_[f].halfedges.push_back(static_cast<int>(h));
    }
  }
}

void Arrangement::ComputeSamples() {
  for (size_t f = 0; f < faces_.size(); ++f) {
    if (faces_[f].is_outer) continue;
    bool found = false;
    for (int h : faces_[f].halfedges) {
      if (found) break;
      // Walk a few edges of this cycle.
      int cur = h;
      for (int step = 0; step < 8 && !found; ++step) {
        const Edge& e = edges_[cur >> 1];
        double tm = 0.5 * (e.geom.t0 + e.geom.t1);
        Point2 m = e.geom.Eval(tm);
        Vec2 tan = e.geom.Tangent(tm);
        if (cur & 1) tan = -tan;
        Vec2 nl = Normalized(Perp(tan));  // Left normal: into the face.
        for (double eps = 1e-3 * box_.Diagonal(); eps > 1e-12 * box_.Diagonal();
             eps *= 0.25) {
          Point2 p = m + eps * nl;
          if (!box_.Contains(p)) continue;
          if (LocateFace(p) == static_cast<int>(f)) {
            faces_[f].sample = p;
            found = true;
            break;
          }
        }
        cur = next_[cur];
      }
    }
    PNN_CHECK_MSG(found, "failed to find an interior sample point for a face");
  }
}

int Arrangement::LocateFace(Point2 q) const {
  if (q.x < box_.xmin || q.x > box_.xmax || q.y < box_.ymin || q.y > box_.ymax) {
    return outer_face_;
  }
  for (int attempt = 0; attempt < 9; ++attempt) {
    double nudge = attempt == 0 ? 0.0
                                : ((attempt % 2) ? 1.0 : -1.0) *
                                      std::pow(4.0, (attempt - 1) / 2) * 64 * snap_eps_;
    RayHit hit = ShootUp({q.x + nudge, q.y}, -1);
    if (hit.edge < 0) return outer_face_;
    if (hit.degenerate) continue;
    const Edge& e = edges_[hit.edge];
    Vec2 tan = e.geom.Tangent(hit.param);
    return tan.x < 0 ? e.face_left : e.face_right;
  }
  PNN_CHECK_MSG(false, "LocateFace: persistent degeneracy");
  return -1;
}

bool Arrangement::EulerCheck() const {
  // Components over vertices via edges.
  Dsu dsu(static_cast<int>(vertices_.size()));
  for (const Edge& e : edges_) dsu.Unite(e.v0, e.v1);
  int comps = 0;
  for (size_t v = 0; v < vertices_.size(); ++v) {
    if (dsu.Find(static_cast<int>(v)) == static_cast<int>(v)) ++comps;
  }
  long long euler = static_cast<long long>(vertices_.size()) -
                    static_cast<long long>(edges_.size()) +
                    static_cast<long long>(faces_.size());
  return euler == 1 + comps;
}

}  // namespace pnn
