#include "src/shard/sharded_engine.h"

#include <algorithm>
#include <limits>
#include <thread>
#include <utility>

#include "src/dyn/answer_cache.h"
#include "src/dyn/merge.h"
#include "src/dyn/tail_cache.h"
#include "src/util/arena.h"
#include "src/util/check.h"

namespace pnn {
namespace shard {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double Coord(Point2 p, int axis) { return axis == 0 ? p.x : p.y; }

// The union of the shards' snapshots as one Snapshot: the buckets
// concatenate (shared, zero-copy), the live tail entries gather into one
// tail, and the aggregates recombine by sum / max / min — exactly what a
// single engine over the union would publish. The Merged* decompositions
// never assume the parts came from one engine, so feeding them this union
// reproduces the single-engine answers bit-for-bit. The union gets its own
// tail-sample cache: it lives exactly as long as the view that owns it,
// which is the required per-publish invalidation.
std::shared_ptr<const dyn::Snapshot> CombineSnapshots(
    const std::vector<std::shared_ptr<const dyn::Snapshot>>& parts,
    bool answer_cache) {
  auto c = std::make_shared<dyn::Snapshot>();
  auto tail = std::make_shared<std::vector<dyn::TailEntry>>();
  for (const auto& s : parts) {
    for (const auto& bref : s->buckets) {
      if (bref.live_count > 0) c->buckets.push_back(bref);
    }
    if (s->tail != nullptr) {
      for (size_t i = 0; i < s->tail->size(); ++i) {
        if (s->TailAlive(i)) tail->push_back((*s->tail)[i]);
      }
    }
    c->live_count += s->live_count;
    c->discrete_count += s->discrete_count;
    c->continuous_count += s->continuous_count;
    c->total_complexity += s->total_complexity;
    c->max_k = std::max(c->max_k, s->max_k);
    c->wmin = std::min(c->wmin, s->wmin);
    c->wmax = std::max(c->wmax, s->wmax);
  }
  c->rho = c->wmax / c->wmin;
  if (!tail->empty()) c->tail_mc = std::make_shared<dyn::TailMcCache>();
  // The union snapshot gets its own answer cache with the same lifecycle
  // as its tail_mc: any shard's publish invalidates the view (pointer
  // mismatch in View()), which retires this cache with it.
  if (answer_cache && c->live_count > 0) {
    c->answers = std::make_shared<dyn::AnswerCache>();
  }
  c->tail = std::move(tail);
  return c;
}

}  // namespace

ShardedEngine::ShardedEngine(Options options) : ShardedEngine(UncertainSet(), options) {}

ShardedEngine::ShardedEngine(const UncertainSet& initial, Options options)
    : options_(std::move(options)) {
  PNN_CHECK_MSG(options_.num_shards >= 1, "num_shards must be >= 1");
  PNN_CHECK_MSG(options_.shard.pool == nullptr,
                "set shard::Options::pool; the per-shard pool is managed here");
  PNN_CHECK_MSG(options_.rebalance_max_imbalance > 1,
                "rebalance_max_imbalance must exceed 1");
  PNN_CHECK_MSG(options_.shard.maintenance_lane == nullptr,
                "per-shard maintenance lanes are managed here");
  dyn::Options per_shard = options_.shard;
  per_shard.pool = options_.pool;

  if (options_.placement == PlacementKind::kSpatialKdMedian) {
    spatial_ = initial.empty()
                   ? std::make_unique<SpatialRouter>(options_.num_shards)
                   : std::make_unique<SpatialRouter>(options_.num_shards, initial);
  }

  std::vector<std::vector<Id>> ids_of(options_.num_shards);
  std::vector<UncertainSet> points_of(options_.num_shards);
  for (size_t i = 0; i < initial.size(); ++i) {
    Id id = static_cast<Id>(i);
    uint32_t s = PlaceLocked(id, initial[i]);
    shard_of_.emplace(id, s);
    ids_of[s].push_back(id);
    points_of[s].push_back(initial[i]);
  }
  next_id_ = static_cast<Id>(initial.size());

  if (options_.pool != nullptr) {
    // A dedicated maintenance lane per shard: sliced build steps hop
    // through it, so one shard's compaction never monopolizes the pool's
    // workers while another shard's merge waits.
    lanes_.reserve(options_.num_shards);
    for (uint32_t s = 0; s < options_.num_shards; ++s) {
      lanes_.push_back(std::make_unique<exec::Lane>(options_.pool));
    }
  }

  // Bootstrap the shard engines in parallel: each builds its initial
  // bucket through the same staged builder maintenance uses, with the kd
  // builds forking per-subtree on the shared pool.
  shards_.resize(options_.num_shards);
  auto build_shard = [&](size_t s) {
    dyn::Options opts = per_shard;
    if (!lanes_.empty()) opts.maintenance_lane = lanes_[s].get();
    shards_[s] = points_of[s].empty()
                     ? std::make_unique<dyn::DynamicEngine>(opts)
                     : std::make_unique<dyn::DynamicEngine>(std::move(ids_of[s]),
                                                            points_of[s], opts);
  };
  exec::MaybeParallelFor(options_.pool, options_.num_shards, build_shard);
}

ShardedEngine::ShardedEngine(std::vector<std::vector<dyn::RecoveredBucket>> recovered,
                             Options options)
    : options_(std::move(options)) {
  PNN_CHECK_MSG(options_.num_shards >= 1, "num_shards must be >= 1");
  PNN_CHECK_MSG(recovered.size() == options_.num_shards,
                "one recovered-bucket list per shard");
  PNN_CHECK_MSG(options_.shard.pool == nullptr,
                "set shard::Options::pool; the per-shard pool is managed here");
  PNN_CHECK_MSG(options_.shard.maintenance_lane == nullptr,
                "per-shard maintenance lanes are managed here");
  dyn::Options per_shard = options_.shard;
  per_shard.pool = options_.pool;
  if (options_.placement == PlacementKind::kSpatialKdMedian) {
    // Placeholder partition; FinishRecovery reseeds it from the live set.
    spatial_ = std::make_unique<SpatialRouter>(options_.num_shards);
  }
  if (options_.pool != nullptr) {
    lanes_.reserve(options_.num_shards);
    for (uint32_t s = 0; s < options_.num_shards; ++s) {
      lanes_.push_back(std::make_unique<exec::Lane>(options_.pool));
    }
  }
  shards_.resize(options_.num_shards);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    dyn::Options opts = per_shard;
    if (!lanes_.empty()) opts.maintenance_lane = lanes_[s].get();
    // next_id floor 0 per shard: FinishRecovery sets the global counter.
    shards_[s] = std::make_unique<dyn::DynamicEngine>(std::move(recovered[s]),
                                                      /*next_id_floor=*/0, opts);
  }
}

bool ShardedEngine::RecoverInsert(uint32_t shard, Id id, UncertainPoint point) {
  if (shards_[shard]->IsLive(id)) return false;
  shards_[shard]->InsertWithId(id, std::move(point));
  return true;
}

bool ShardedEngine::RecoverErase(uint32_t shard, Id id) {
  return shards_[shard]->Erase(id);
}

void ShardedEngine::FinishRecovery(Id next_id_floor) {
  std::lock_guard<std::mutex> lock(mu_);
  Id max_id = -1;
  UncertainSet all_live;
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    std::vector<Id> ids;
    UncertainSet pts = shards_[s]->LiveSet(&ids);
    for (Id id : ids) {
      bool inserted = shard_of_.emplace(id, s).second;
      PNN_CHECK_MSG(inserted, "FinishRecovery: id live on two shards — the "
                              "caller must resolve mid-move duplicates (by "
                              "move_seq) before sealing");
      max_id = std::max(max_id, id);
    }
    if (options_.placement == PlacementKind::kSpatialKdMedian) {
      all_live.insert(all_live.end(), pts.begin(), pts.end());
    }
  }
  next_id_ = std::max(next_id_floor, max_id + 1);
  if (options_.placement == PlacementKind::kSpatialKdMedian && !all_live.empty()) {
    spatial_ = std::make_unique<SpatialRouter>(options_.num_shards, all_live);
  }
}

ShardedEngine::~ShardedEngine() { WaitForMaintenance(); }

uint32_t ShardedEngine::PlaceLocked(Id id, const UncertainPoint& point) const {
  if (options_.placement == PlacementKind::kSpatialKdMedian) {
    return spatial_->Route(point.Centroid());
  }
  return HashShard(id, options_.num_shards);
}

Id ShardedEngine::Insert(UncertainPoint point) {
  std::unique_lock<std::mutex> lock(mu_);
  PNN_CHECK_MSG(next_id_ < std::numeric_limits<Id>::max(), "id space exhausted");
  Id id = next_id_++;
  uint32_t s = PlaceLocked(id, point);
  // Write-ahead: the listener persists the op before any state changes. A
  // veto (the durable store refused the ack) rolls the id back — it was
  // never observable, so the next insert reuses it.
  if (options_.listener != nullptr && !options_.listener->OnInsert(s, id, point)) {
    --next_id_;
    return -1;
  }
  shard_of_.emplace(id, s);
  shards_[s]->InsertWithId(id, std::move(point));
  if (options_.listener != nullptr) options_.listener->OnApplied(s);
  MaybeScheduleRebalanceLocked();
  return id;
}

bool ShardedEngine::Erase(Id id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = shard_of_.find(id);
  if (it == shard_of_.end()) return false;
  uint32_t s = it->second;
  // A veto leaves the point live: nothing was logged, nothing applies.
  if (options_.listener != nullptr && !options_.listener->OnErase(s, id)) {
    return false;
  }
  bool erased = shards_[s]->Erase(id);
  PNN_CHECK_MSG(erased, "id->shard map out of sync with shard live set");
  shard_of_.erase(it);
  if (options_.listener != nullptr) options_.listener->OnApplied(s);
  MaybeScheduleRebalanceLocked();
  return true;
}

std::vector<std::shared_ptr<const dyn::Snapshot>> ShardedEngine::Grab() const {
  for (;;) {
    uint64_t before = epoch_.load(std::memory_order_acquire);
    if ((before & 1) == 0) {
      std::vector<std::shared_ptr<const dyn::Snapshot>> parts;
      parts.reserve(shards_.size());
      for (const auto& s : shards_) parts.push_back(s->snapshot());
      if (epoch_.load(std::memory_order_acquire) == before) return parts;
    }
    // A rebalance move is splicing a point between two shards; the gather
    // is cheap, so retry rather than ever seeing the point 0 or 2 times.
    std::this_thread::yield();
  }
}

std::shared_ptr<const CombinedView> ShardedEngine::View() const {
  auto cached = std::atomic_load_explicit(&view_cache_, std::memory_order_acquire);
  for (;;) {
    uint64_t before = epoch_.load(std::memory_order_acquire);
    if ((before & 1) == 0) {
      if (cached != nullptr) {
        // Validate: every shard's current snapshot must still be the
        // cached part. The cache holds each part alive, so a pointer match
        // means "still that snapshot" — publishes always allocate a new
        // object, and a freed address cannot recur while we pin it. A
        // shard that moved on since the view was built mismatches, which
        // is exactly the insert/erase/merge/rebalance invalidation.
        bool match = true;
        for (size_t i = 0; i < shards_.size(); ++i) {
          if (shards_[i]->snapshot().get() != cached->parts[i].get()) {
            match = false;
            break;
          }
        }
        if (match && epoch_.load(std::memory_order_acquire) == before) {
          view_hits_.fetch_add(1, std::memory_order_relaxed);
          return cached;
        }
      }
      std::vector<std::shared_ptr<const dyn::Snapshot>> parts;
      parts.reserve(shards_.size());
      for (const auto& s : shards_) parts.push_back(s->snapshot());
      if (epoch_.load(std::memory_order_acquire) == before) {
        auto view = std::make_shared<CombinedView>();
        view->parts = std::move(parts);
        view->combined = CombineSnapshots(view->parts, options_.shard.answer_cache);
        std::atomic_store_explicit(&view_cache_,
                                   std::shared_ptr<const CombinedView>(view),
                                   std::memory_order_release);
        view_misses_.fetch_add(1, std::memory_order_relaxed);
        return view;
      }
      cached = std::atomic_load_explicit(&view_cache_, std::memory_order_acquire);
    }
    // A rebalance move is mid-flight; retry like Grab().
    std::this_thread::yield();
  }
}

double ShardedEngine::ResolveEps(std::optional<double> eps_opt) const {
  double eps = eps_opt.value_or(options_.shard.engine.default_eps);
  PNN_CHECK_MSG(eps > 0 && eps < 1, "eps must be in (0,1)");
  return eps;
}

std::vector<Id> ShardedEngine::NonzeroNN(Point2 q) const {
  return NonzeroNN(*View(), q);
}

std::vector<Id> ShardedEngine::NonzeroNN(const CombinedView& view, Point2 q) const {
  std::vector<Id> out;
  NonzeroNNInto(view, q, &out);
  return out;
}

void ShardedEngine::NonzeroNNInto(Point2 q, std::vector<Id>* out) const {
  NonzeroNNInto(*View(), q, out);
}

void ShardedEngine::NonzeroNNInto(const CombinedView& view, Point2 q,
                                  std::vector<Id>* out) const {
  const auto& parts = view.parts;
  const dyn::Snapshot& u = *view.combined;
  out->clear();
  if (u.live_count == 0) return;
  // Answer memoization on the view's union snapshot: a hit skips both
  // fan-out stages and the final sort (invalidation is the view rebuild —
  // see answer_cache.h).
  dyn::AnswerCache* cache = u.answers.get();
  dyn::AnswerCache::Key cache_key{dyn::AnswerCache::Kind::kNonzeroNN, q, 0.0};
  if (cache != nullptr && cache->LookupIds(cache_key, out)) return;

  // Skip empty shards before scheduling pool work: an empty shard
  // contributes +inf to stage 1 and nothing to stage 2, so fanning it out
  // (and allocating its per-shard result vector) is pure overhead.
  util::ScratchVec<size_t> active_lease;
  std::vector<size_t>& active = *active_lease;
  active.clear();
  for (size_t i = 0; i < parts.size(); ++i) {
    if (parts[i]->live_count > 0) active.push_back(i);
  }

  // Stage 1: the global Lemma 2.1 bound is the min over the shards'
  // per-part bounds; stage 2: per-shard threshold reporting against it.
  // Both stages are per-shard independent, so they fan out on the pool.
  size_t n = active.size();
  bool fan_out = options_.pool != nullptr && n > 1;
  util::ScratchVec<double> deltas_lease;
  std::vector<double>& deltas = *deltas_lease;
  deltas.assign(n, kInf);
  auto stage1 = [&](size_t i) {
    deltas[i] = dyn::SnapshotNonzeroDelta(*parts[active[i]], q);
  };
  if (fan_out) {
    options_.pool->ParallelFor(n, stage1);
  } else {
    for (size_t i = 0; i < n; ++i) stage1(i);
  }
  double bound = kInf;
  for (double d : deltas) bound = std::min(bound, d);

  bool mixed = u.discrete_count > 0 && u.continuous_count > 0;
  util::ScratchVec<std::vector<Id>> found_lease;
  std::vector<std::vector<Id>>& found = *found_lease;
  // Grow-only: shrinking would destroy the tail inner vectors and forfeit
  // their pooled capacity when the active-shard count oscillates.
  if (found.size() < n) found.resize(n);
  for (size_t i = 0; i < n; ++i) found[i].clear();
  auto stage2 = [&](size_t i) {
    dyn::AppendNonzeroNNWithin(*parts[active[i]], q, bound, mixed, &found[i]);
  };
  if (fan_out) {
    options_.pool->ParallelFor(n, stage2);
  } else {
    for (size_t i = 0; i < n; ++i) stage2(i);
  }
  for (size_t i = 0; i < n; ++i) {
    out->insert(out->end(), found[i].begin(), found[i].end());
  }
  std::sort(out->begin(), out->end());
  if (cache != nullptr) cache->InsertIds(cache_key, *out);
}

std::vector<Quantification> ShardedEngine::Quantify(Point2 q,
                                                    std::optional<double> eps_opt) const {
  return Quantify(*View(), q, eps_opt);
}

std::vector<Quantification> ShardedEngine::Quantify(const CombinedView& view, Point2 q,
                                                    std::optional<double> eps_opt) const {
  std::vector<Quantification> out;
  QuantifyInto(view, q, eps_opt, &out);
  return out;
}

void ShardedEngine::QuantifyInto(Point2 q, std::optional<double> eps_opt,
                                 std::vector<Quantification>* out) const {
  QuantifyInto(*View(), q, eps_opt, out);
}

void ShardedEngine::QuantifyInto(const CombinedView& view, Point2 q,
                                 std::optional<double> eps_opt,
                                 std::vector<Quantification>* out) const {
  double eps = ResolveEps(eps_opt);
  const dyn::Snapshot& snap = *view.combined;
  out->clear();
  if (snap.live_count == 0) return;
  dyn::AnswerCache* cache = snap.answers.get();
  dyn::AnswerCache::Key cache_key{dyn::AnswerCache::Kind::kQuantify, q, eps};
  if (cache != nullptr && cache->LookupQuants(cache_key, out)) return;
  if (dyn::PlanForSnapshot(snap, options_.shard.engine, eps) == QuantifyPlan::kSpiral) {
    dyn::MergedSpiralQuantifyInto(snap, q, eps, out);
  } else {
    size_t rounds = dyn::McRoundsForSnapshot(snap, options_.shard.engine, eps);
    dyn::MergedMonteCarloQuantifyInto(snap, q, rounds, options_.shard.engine.seed,
                                      options_.pool, out);
  }
  if (cache != nullptr) cache->InsertQuants(cache_key, *out);
}

std::vector<Quantification> ShardedEngine::QuantifyExact(Point2 q) const {
  return QuantifyExact(*View(), q);
}

std::vector<Quantification> ShardedEngine::QuantifyExact(const CombinedView& view,
                                                         Point2 q) const {
  const dyn::Snapshot& snap = *view.combined;
  if (snap.live_count == 0) return {};
  dyn::AnswerCache* cache = snap.answers.get();
  dyn::AnswerCache::Key cache_key{dyn::AnswerCache::Kind::kQuantifyExact, q, 0.0};
  std::vector<Quantification> cached;
  if (cache != nullptr && cache->LookupQuants(cache_key, &cached)) return cached;
  std::vector<Quantification> out;
  if (snap.all_discrete()) {
    out = dyn::MergedQuantifyExact(snap, q);
  } else {
    PNN_CHECK_MSG(snap.all_continuous(),
                  "QuantifyExact supports all-discrete or all-continuous inputs");
    std::vector<Id> ids;
    UncertainSet live = dyn::SnapshotLiveSet(snap, &ids);
    out = QuantifyNumericContinuous(live, q, 1e-8);
    for (auto& e : out) e.index = ids[e.index];
  }
  if (cache != nullptr) cache->InsertQuants(cache_key, out);
  return out;
}

std::vector<Quantification> ShardedEngine::ThresholdNN(Point2 q, double tau,
                                                       std::optional<double> eps) const {
  return ThresholdNN(*View(), q, tau, eps);
}

std::vector<Quantification> ShardedEngine::ThresholdNN(const CombinedView& view,
                                                       Point2 q, double tau,
                                                       std::optional<double> eps) const {
  PNN_CHECK_MSG(tau >= 0 && tau <= 1, "ThresholdNN tau must be a probability in [0,1]");
  return ThresholdFilter(Quantify(view, q, eps), tau);
}

Id ShardedEngine::MostLikelyNN(Point2 q, std::optional<double> eps) const {
  return pnn::MostLikelyNN(Quantify(q, eps));
}

Id ShardedEngine::MostLikelyNN(const CombinedView& view, Point2 q,
                               std::optional<double> eps) const {
  return pnn::MostLikelyNN(Quantify(view, q, eps));
}

QuantifyPlan ShardedEngine::PlanForQuantify(std::optional<double> eps_opt) const {
  auto view = View();
  return dyn::PlanForSnapshot(*view->combined, options_.shard.engine,
                              ResolveEps(eps_opt));
}

void ShardedEngine::Prewarm(std::optional<double> eps_opt) const {
  double eps = ResolveEps(eps_opt);
  auto view = View();
  const dyn::Snapshot& snap = *view->combined;
  if (snap.live_count == 0) return;
  if (dyn::PlanForSnapshot(snap, options_.shard.engine, eps) !=
      QuantifyPlan::kMonteCarlo) {
    return;
  }
  size_t rounds = dyn::McRoundsForSnapshot(snap, options_.shard.engine, eps);
  for (const auto& bref : snap.buckets) {
    if (bref.live_count > 0) bref.bucket->EnsureRounds(rounds, options_.pool);
  }
  if (snap.tail_mc != nullptr) {
    snap.tail_mc->Ensure(snap, rounds, options_.shard.engine.seed);
  }
}

size_t ShardedEngine::live_size() const {
  size_t live = 0;
  for (const auto& s : Grab()) live += s->live_count;
  return live;
}

std::vector<size_t> ShardedEngine::ShardLiveSizes() const {
  auto parts = Grab();
  std::vector<size_t> sizes(parts.size());
  for (size_t i = 0; i < parts.size(); ++i) sizes[i] = parts[i]->live_count;
  return sizes;
}

RebalanceStats ShardedEngine::rebalance_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rebalance_stats_;
}

SnapshotCacheStats ShardedEngine::snapshot_cache_stats() const {
  SnapshotCacheStats s;
  s.hits = view_hits_.load(std::memory_order_relaxed);
  s.misses = view_misses_.load(std::memory_order_relaxed);
  return s;
}

UncertainSet ShardedEngine::LiveSet(std::vector<Id>* ids) const {
  return dyn::SnapshotLiveSet(*View()->combined, ids);
}

Engine::Options ShardedEngine::ReferenceEngineOptions() const {
  std::vector<Id> ids;
  LiveSet(&ids);
  Engine::Options o = options_.shard.engine;
  o.mc_stream_ids.reserve(ids.size());
  for (Id id : ids) o.mc_stream_ids.push_back(static_cast<uint64_t>(id));
  return o;
}

bool ShardedEngine::RebalanceNeededLocked(uint32_t* src, uint32_t* dst,
                                          size_t* total_out) const {
  size_t total = 0;
  size_t max_live = 0, min_live = std::numeric_limits<size_t>::max();
  uint32_t argmax = 0, argmin = 0;
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    size_t n = shards_[i]->live_size();
    total += n;
    if (n > max_live) {
      max_live = n;
      argmax = i;
    }
    if (n < min_live) {
      min_live = n;
      argmin = i;
    }
  }
  if (shards_.size() < 2 || total < options_.rebalance_min_points) return false;
  double ideal = static_cast<double>(total) / static_cast<double>(shards_.size());
  if (static_cast<double>(max_live) <= options_.rebalance_max_imbalance * ideal) {
    return false;
  }
  if (argmax == argmin || max_live < 2) return false;
  *src = argmax;
  *dst = argmin;
  *total_out = total;
  return true;
}

bool ShardedEngine::RebalanceNeeded() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t src, dst;
  size_t total;
  return RebalanceNeededLocked(&src, &dst, &total);
}

bool ShardedEngine::RebalanceOnceLocked(std::unique_lock<std::mutex>* lock) {
  uint32_t src, dst;
  size_t total;
  if (!RebalanceNeededLocked(&src, &dst, &total)) return false;

  std::vector<Id> ids;
  UncertainSet pts = shards_[src]->LiveSet(&ids);
  size_t src_live = ids.size();
  size_t dst_live = shards_[dst]->live_size();
  if (src_live < 2) return false;
  // Cap the migration at half the gap: the classic potential argument
  // (sum of squared loads strictly decreases) then bounds the number of
  // passes, so RebalanceNow / the background loop terminate.
  size_t cap = std::max<size_t>(1, std::min(src_live / 2, (src_live - dst_live) / 2));

  // Pick the moved subset. Spatial placement carves off the cap-rank
  // coordinate prefix along the wider-spread centroid axis and re-labels
  // that region in the router (future inserts follow the moved points);
  // hash placement (or a degenerate all-equal cloud) just takes the
  // oldest-id prefix, since placement is id-determined there anyway.
  std::vector<size_t> chosen;
  if (options_.placement == PlacementKind::kSpatialKdMedian) {
    std::vector<Point2> centroids(src_live);
    double xmin = kInf, xmax = -kInf, ymin = kInf, ymax = -kInf;
    for (size_t i = 0; i < src_live; ++i) {
      centroids[i] = pts[i].Centroid();
      xmin = std::min(xmin, centroids[i].x);
      xmax = std::max(xmax, centroids[i].x);
      ymin = std::min(ymin, centroids[i].y);
      ymax = std::max(ymax, centroids[i].y);
    }
    int axis = xmax - xmin >= ymax - ymin ? 0 : 1;
    std::vector<double> coords(src_live);
    for (size_t i = 0; i < src_live; ++i) coords[i] = Coord(centroids[i], axis);
    std::vector<double> order = coords;
    std::nth_element(order.begin(), order.begin() + static_cast<long>(cap), order.end());
    double threshold = order[cap];
    for (size_t i = 0; i < src_live; ++i) {
      if (coords[i] < threshold) chosen.push_back(i);
    }
    if (!chosen.empty()) {
      spatial_->SplitShard(src, dst, axis, threshold);
    }
  }
  if (chosen.empty()) {
    for (size_t i = 0; i < cap; ++i) chosen.push_back(i);
  }

  size_t moved = 0;
  bool vetoed = false;
  for (size_t idx : chosen) {
    Id id = ids[idx];
    auto it = shard_of_.find(id);
    // Erased (or already migrated) by an update that slipped in between
    // point moves; skip.
    if (it == shard_of_.end() || it->second != src) continue;
    // Write-ahead: both shards' logs record the move (destination first,
    // inside the listener) before either engine changes. A veto means a
    // shard's store is degraded — stop rebalancing; the pass retries
    // after a mutation heals it.
    if (options_.listener != nullptr &&
        !options_.listener->OnMove(src, dst, id, pts[idx])) {
      vetoed = true;
      break;
    }
    // The only multi-shard mutation: bump the seqlock epoch around the
    // erase+reinsert so no query observes the point 0 or 2 times.
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    bool erased = shards_[src]->Erase(id);
    PNN_CHECK(erased);
    shards_[dst]->InsertWithId(id, pts[idx]);
    it->second = dst;
    epoch_.fetch_add(1, std::memory_order_release);
    if (options_.listener != nullptr) {
      options_.listener->OnApplied(src);
      options_.listener->OnApplied(dst);
    }
    ++moved;
    // Let queued updates through between moves.
    lock->unlock();
    lock->lock();
  }
  if (moved > 0) {
    ++rebalance_stats_.passes;
    rebalance_stats_.points_moved += moved;
  }
  return moved > 0 && !vetoed;
}

void ShardedEngine::MaybeScheduleRebalanceLocked() {
  if (!options_.auto_rebalance || options_.pool == nullptr || rebalance_running_) {
    return;
  }
  uint32_t src, dst;
  size_t total;
  if (!RebalanceNeededLocked(&src, &dst, &total)) return;
  rebalance_running_ = true;
  options_.pool->Submit([this] { RebalanceLoop(); });
}

void ShardedEngine::RebalanceLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (RebalanceOnceLocked(&lock)) {
  }
  rebalance_running_ = false;
  cv_.notify_all();
}

void ShardedEngine::RebalanceNow() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !rebalance_running_; });
  rebalance_running_ = true;
  while (RebalanceOnceLocked(&lock)) {
  }
  rebalance_running_ = false;
  cv_.notify_all();
}

void ShardedEngine::WaitForMaintenance() const {
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !rebalance_running_; });
  }
  for (const auto& s : shards_) s->WaitForMaintenance();
}

}  // namespace shard
}  // namespace pnn
