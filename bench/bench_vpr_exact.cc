// E9 — Lemma 4.1 + Theorem 4.2: the exact probabilistic Voronoi diagram
// V_Pr has Theta(N^4) complexity (N = nk), and answers exact
// quantification queries in O(log N + t).
//
// Part 1: N sweep on random instances — faces grow ~N^4.
// Part 2: the Lemma 4.1 Omega(n^4) instance (k = 2, one location in the
// unit disk, one far away): face count inside the unit-disk window.
// Part 3: query time vs the direct Eq. (2) sweep.

#include <cmath>
#include <cstdio>
#include <vector>

#include "src/core/prob/vpr_diagram.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/util/timer.h"
#include "src/workload/generators.h"

namespace pnn {
namespace {

void SweepN() {
  std::printf("\n### N sweep (random instances, k = 2)\n\n");
  Table table({"n", "N", "bisectors", "faces", "N^4", "build_ms"});
  std::vector<std::pair<double, double>> growth;
  for (int n : {2, 3, 4, 6, 8}) {
    Rng rng(29 + n);
    auto pts = ToUniformUncertain(RandomDiscreteLocations(n, 2, 8, 6, &rng));
    Timer t;
    VprDiagram vpr(pts);
    double ms = t.Millis();
    size_t faces = vpr.NumFaces();
    int big_n = 2 * n;
    growth.push_back({big_n, static_cast<double>(faces)});
    table.AddRow({Table::Int(n), Table::Int(big_n), Table::Int(vpr.NumBisectors()),
                  Table::Int(faces),
                  Table::Int(static_cast<long long>(big_n) * big_n * big_n * big_n),
                  Table::Num(ms, 4)});
  }
  table.Print();
  std::printf("\nfitted growth exponent in N: %.2f (claim: 4)\n", LogLogSlope(growth));
}

void LowerBound() {
  std::printf("\n### Lemma 4.1 Omega(n^4) instance (k = 2)\n\n");
  Table table({"n", "faces in window", "n^4/24 (leading term)", "build_ms"});
  std::vector<std::pair<double, double>> growth;
  for (int n : {3, 4, 6, 8, 10}) {
    Rng rng(31);
    auto pts = Lemma41Instance(n, &rng);
    // Count within the unit-disk window where all bisector pairs cross.
    Timer t;
    VprDiagram vpr(pts, Box2{-1.2, -1.2, 1.2, 1.2});
    double ms = t.Millis();
    size_t faces = vpr.NumFaces();
    growth.push_back({n, static_cast<double>(faces)});
    double leading = std::pow(static_cast<double>(n), 4.0) / 24.0;
    table.AddRow({Table::Int(n), Table::Int(faces), Table::Num(leading, 4),
                  Table::Num(ms, 4)});
  }
  table.Print();
  std::printf("\nfitted growth exponent in n: %.2f (claim: 4)\n", LogLogSlope(growth));
}

void QueryTime() {
  std::printf("\n### query: V_Pr lookup vs direct Eq. (2) sweep (n = 6, k = 2)\n\n");
  Rng rng(37);
  auto pts = ToUniformUncertain(RandomDiscreteLocations(6, 2, 8, 6, &rng));
  VprDiagram vpr(pts);
  const int kQueries = 2000;
  std::vector<Point2> queries(kQueries);
  for (auto& q : queries) q = {rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
  Timer t1;
  size_t acc = 0;
  for (Point2 q : queries) acc += vpr.Query(q).size();
  double lookup_us = t1.Micros() / kQueries;
  Timer t2;
  for (Point2 q : queries) acc += QuantifyExactDiscrete(pts, q).size();
  double sweep_us = t2.Micros() / kQueries;
  Table table({"method", "us/query"});
  table.AddRow({"V_Pr point location", Table::Num(lookup_us, 3)});
  table.AddRow({"direct Eq. (2) sweep", Table::Num(sweep_us, 3)});
  table.Print();
  std::printf("(accumulator %zu)\n", acc % 2);
}

}  // namespace
}  // namespace pnn

int main() {
  std::printf("# E9 (Lemma 4.1, Theorem 4.2): exact V_Pr diagram, Theta(N^4)\n");
  pnn::SweepN();
  pnn::LowerBound();
  pnn::QueryTime();
  return 0;
}
