#include "src/geometry/solvers.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pnn {
namespace {

// One polishing pass: Newton on the original polynomial (Horner form for
// value and derivative).
double PolishPolyRoot(const double* coeffs, int degree, double x) {
  for (int it = 0; it < 20; ++it) {
    double v = coeffs[0], dv = 0.0;
    for (int i = 1; i <= degree; ++i) {
      dv = dv * x + v;
      v = v * x + coeffs[i];
    }
    if (dv == 0.0) break;
    double step = v / dv;
    if (!std::isfinite(step)) break;
    x -= step;
    if (std::abs(step) < 1e-15 * (1.0 + std::abs(x))) break;
  }
  return x;
}

}  // namespace

void RealRoots::SortAndDedupe(double tol) {
  std::sort(root.begin(), root.begin() + count);
  int w = 0;
  for (int i = 0; i < count; ++i) {
    if (w == 0 || std::abs(root[i] - root[w - 1]) > tol) root[w++] = root[i];
  }
  count = w;
}

RealRoots SolveQuadratic(double a, double b, double c) {
  RealRoots r;
  if (a == 0.0) {
    if (b != 0.0) r.Add(-c / b);
    return r;
  }
  double disc = b * b - 4 * a * c;
  if (disc < 0) return r;
  double sq = std::sqrt(disc);
  // Stable formulation avoiding cancellation.
  double q = -0.5 * (b + (b >= 0 ? sq : -sq));
  double x1 = q / a;
  if (q != 0.0) {
    double x2 = c / q;
    r.Add(std::min(x1, x2));
    if (disc > 0) r.Add(std::max(x1, x2));
  } else {
    r.Add(0.0);
    if (disc > 0) r.Add(x1);  // x1 = -b/a, other root is 0.
  }
  return r;
}

RealRoots SolveCubic(double a, double b, double c, double d) {
  RealRoots r;
  if (a == 0.0) return SolveQuadratic(b, c, d);
  // Normalize and depress: x = t - B/3.
  double B = b / a, C = c / a, D = d / a;
  double p = C - B * B / 3.0;
  double q = 2.0 * B * B * B / 27.0 - B * C / 3.0 + D;
  double shift = -B / 3.0;
  double disc = q * q / 4.0 + p * p * p / 27.0;
  const double coeffs[4] = {a, b, c, d};
  if (disc > 0) {
    double sq = std::sqrt(disc);
    double u = std::cbrt(-q / 2.0 + sq);
    double v = std::cbrt(-q / 2.0 - sq);
    r.Add(PolishPolyRoot(coeffs, 3, u + v + shift));
  } else if (disc == 0.0) {
    if (q == 0.0) {
      r.Add(shift);
    } else {
      double u = std::cbrt(-q / 2.0);
      r.Add(PolishPolyRoot(coeffs, 3, 2 * u + shift));
      r.Add(PolishPolyRoot(coeffs, 3, -u + shift));
    }
  } else {
    // Three real roots: trigonometric form.
    double rho = std::sqrt(-p * p * p / 27.0);
    double theta = std::acos(std::clamp(-q / (2.0 * rho), -1.0, 1.0));
    double m = 2.0 * std::sqrt(-p / 3.0);
    for (int k = 0; k < 3; ++k) {
      double t = m * std::cos((theta + 2.0 * M_PI * k) / 3.0);
      r.Add(PolishPolyRoot(coeffs, 3, t + shift));
    }
  }
  double scale = 1.0 + std::abs(shift);
  r.SortAndDedupe(1e-12 * scale);
  return r;
}

RealRoots SolveQuartic(double a, double b, double c, double d, double e) {
  RealRoots r;
  if (a == 0.0) return SolveCubic(b, c, d, e);
  double B = b / a, C = c / a, D = d / a, E = e / a;
  // Depress: x = t - B/4 gives t^4 + p t^2 + q t + s.
  double p = C - 3.0 * B * B / 8.0;
  double q = D - B * C / 2.0 + B * B * B / 8.0;
  double s = E - B * D / 4.0 + B * B * C / 16.0 - 3.0 * B * B * B * B / 256.0;
  double shift = -B / 4.0;
  const double coeffs[5] = {a, b, c, d, e};

  if (std::abs(q) < 1e-14 * (1.0 + std::abs(p) + std::abs(s))) {
    // Biquadratic.
    RealRoots z = SolveQuadratic(1.0, p, s);
    for (int i = 0; i < z.count; ++i) {
      if (z.root[i] < 0) continue;
      double t = std::sqrt(z.root[i]);
      r.Add(PolishPolyRoot(coeffs, 4, t + shift));
      r.Add(PolishPolyRoot(coeffs, 4, -t + shift));
    }
  } else {
    // Ferrari: resolvent cubic 2y^3 - p y^2 - 2 s y + (s p - q^2/4) = 0.
    RealRoots res = SolveCubic(2.0, -p, -2.0 * s, s * p - q * q / 4.0);
    if (res.count == 0) return r;
    // Pick a resolvent root with 2y - p > 0 if possible.
    double y = res.root[res.count - 1];
    for (int i = 0; i < res.count; ++i) {
      if (2.0 * res.root[i] - p > 0) y = std::max(y, res.root[i]);
    }
    double w2 = 2.0 * y - p;
    if (w2 <= 0) {
      // Fall back to a dense scan (rare, ill-conditioned cases).
      ScanRoots(
          [&](double x) {
            return (((x + B) * x + C) * x + D) * x + E;
          },
          -1e3 * (1 + std::abs(shift)), 1e3 * (1 + std::abs(shift)), 4096, &r);
      return r;
    }
    double w = std::sqrt(w2);
    double u = y + q / (2.0 * w);
    double v = y - q / (2.0 * w);
    // t^4 + p t^2 + q t + s = (t^2 - w t + u)(t^2 + w t + v).
    RealRoots q1 = SolveQuadratic(1.0, -w, u);
    RealRoots q2 = SolveQuadratic(1.0, w, v);
    for (int i = 0; i < q1.count; ++i) {
      r.Add(PolishPolyRoot(coeffs, 4, q1.root[i] + shift));
    }
    for (int i = 0; i < q2.count; ++i) {
      r.Add(PolishPolyRoot(coeffs, 4, q2.root[i] + shift));
    }
  }
  double scale = 1.0 + std::abs(shift);
  r.SortAndDedupe(1e-11 * scale);
  return r;
}

double Bisect(const std::function<double(double)>& f, double lo, double hi) {
  double flo = f(lo);
  for (int it = 0; it < 200; ++it) {
    double mid = 0.5 * (lo + hi);
    if (mid == lo || mid == hi) return mid;
    double fm = f(mid);
    if (fm == 0.0) return mid;
    if ((flo < 0) == (fm < 0)) {
      lo = mid;
      flo = fm;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-15 * (1.0 + std::abs(lo) + std::abs(hi))) break;
  }
  return 0.5 * (lo + hi);
}

void ScanRoots(const std::function<double(double)>& f, double lo, double hi,
               int samples, RealRoots* out) {
  double prev_x = lo, prev_f = f(lo);
  for (int i = 1; i <= samples; ++i) {
    double x = lo + (hi - lo) * i / samples;
    double fx = f(x);
    if (prev_f == 0.0) {
      out->Add(prev_x);
    } else if ((prev_f < 0) != (fx < 0)) {
      out->Add(Bisect(f, prev_x, x));
    }
    prev_x = x;
    prev_f = fx;
  }
  if (prev_f == 0.0) out->Add(prev_x);
  out->SortAndDedupe(1e-12 * (1.0 + std::abs(lo) + std::abs(hi)));
}

bool Newton2D(const std::function<Vec2(Point2)>& f, Point2* p, double tol,
              int max_iter) {
  for (int it = 0; it < max_iter; ++it) {
    Vec2 v = f(*p);
    double err = std::abs(v.x) + std::abs(v.y);
    if (err < tol) return true;
    double h = 1e-7 * (1.0 + std::abs(p->x) + std::abs(p->y));
    Vec2 fx = f({p->x + h, p->y});
    Vec2 fy = f({p->x, p->y + h});
    double j11 = (fx.x - v.x) / h, j12 = (fy.x - v.x) / h;
    double j21 = (fx.y - v.y) / h, j22 = (fy.y - v.y) / h;
    double det = j11 * j22 - j12 * j21;
    if (std::abs(det) < 1e-300) return false;
    double dx = (v.x * j22 - v.y * j12) / det;
    double dy = (v.y * j11 - v.x * j21) / det;
    p->x -= dx;
    p->y -= dy;
    if (!std::isfinite(p->x) || !std::isfinite(p->y)) return false;
  }
  Vec2 v = f(*p);
  return std::abs(v.x) + std::abs(v.y) < tol;
}

}  // namespace pnn
