// Cross-bucket query recombination for the dynamic engine: each function
// answers one query mode over a Snapshot by decomposing it across the
// buckets + tail partition and recombining exactly (see the equivalence
// contract in dynamic_engine.h). The shard router feeds these the union of
// many engines' snapshots — the decompositions never assume the partition
// came from one engine.
//
// Degenerate snapshots are handled uniformly: an empty snapshot (no parts,
// or every bucket and tail entry tombstoned, live_count == 0) yields empty
// results from every function here rather than tripping the all-discrete
// checks or streaming from dead parts.

#ifndef PNN_DYN_MERGE_H_
#define PNN_DYN_MERGE_H_

#include <cstdint>
#include <vector>

#include "src/dyn/dynamic_engine.h"

namespace pnn {
namespace dyn {

/// NN!=0(q): global Delta(q) = min over parts, then per-part threshold
/// reporting. Ascending ids.
std::vector<Id> MergedNonzeroNN(const Snapshot& snap, Point2 q);

/// MergedNonzeroNN writing into `out` (cleared first). Per-part reports
/// land in scratch-arena buffers (Engine::NonzeroNNWithinInto), so with a
/// warm arena and a warm output buffer this allocates nothing.
void MergedNonzeroNNInto(const Snapshot& snap, Point2 q, std::vector<Id>* out);

/// Stage 1 of MergedNonzeroNN on its own: this snapshot's contribution to
/// the Lemma 2.1 pruning bound, min over its live parts (+inf when every
/// part is dead). The shard router min-reduces this across shards.
double SnapshotNonzeroDelta(const Snapshot& snap, Point2 q);

/// Stage 2 of MergedNonzeroNN on its own: appends (unsorted) the ids of
/// this snapshot's live members with delta_i(q) < bound. `mixed` selects
/// the clamped-MinDistance re-filter a mixed discrete/continuous reference
/// engine applies — pass the UNION's mixedness, not this snapshot's, when
/// recombining across shards.
void AppendNonzeroNNWithin(const Snapshot& snap, Point2 q, double bound, bool mixed,
                           std::vector<Id>* out);

/// The snapshot's live set in ascending-id order (with the ids when
/// `ids` is non-null) — the snapshot-consistent counterpart of
/// DynamicEngine::LiveSet for queries that gather the whole set.
UncertainSet SnapshotLiveSet(const Snapshot& snap, std::vector<Id>* ids);

/// Spiral-search quantification: k-way merges the per-bucket best-first
/// location streams (plus sorted tail locations) into the global distance
/// order and runs the shared truncated sweep. Requires an all-discrete
/// live set. Quantification indices are ids, ascending.
std::vector<Quantification> MergedSpiralQuantify(const Snapshot& snap, Point2 q,
                                                 double eps);

/// MergedSpiralQuantify writing into `out` (cleared first). All merge
/// bookkeeping (stream heaps, the retrieved prefix, owner labels) comes
/// from the per-thread scratch arena: with warm pools this allocates
/// nothing.
void MergedSpiralQuantifyInto(const Snapshot& snap, Point2 q, double eps,
                              std::vector<Quantification>* out);

/// Monte-Carlo quantification over `rounds` id-keyed instantiations: per
/// round, the global nearest sample is the argmin over per-bucket nearest
/// samples and the snapshot's cached tail samples (drawn directly when the
/// snapshot carries no cache). Rounds fan out on `pool` when provided
/// (results are round-indexed, so scheduling cannot change them).
std::vector<Quantification> MergedMonteCarloQuantify(const Snapshot& snap, Point2 q,
                                                     size_t rounds, uint64_t seed,
                                                     exec::ThreadPool* pool);

/// MergedMonteCarloQuantify writing into `out` (cleared first); winners
/// and histogram scratch come from the per-thread arena. With warm bucket
/// rounds and a warm tail cache (and a null pool) this allocates nothing.
void MergedMonteCarloQuantifyInto(const Snapshot& snap, Point2 q, size_t rounds,
                                  uint64_t seed, exec::ThreadPool* pool,
                                  std::vector<Quantification>* out);

/// Exact discrete quantification by survival-profile recombination:
///   pi_i = sum over i's locations of
///          (within-part partial) * prod_{other parts} profile(dist),
/// using QuantifyPartDiscrete per part (mathematically exact; float
/// reassociation keeps it within ~1e-12 of the monolithic sweep).
std::vector<Quantification> MergedQuantifyExact(const Snapshot& snap, Point2 q);

/// Pre-sizes the calling thread's scratch pools for every buffer the
/// query recombinations above (and the kd/quantify layers under them)
/// lease, so the thread's first queries skip the pool-growing
/// allocations. Intended as a ThreadPool worker_init hook:
///   exec::ThreadPool::Options po;
///   po.worker_init = [] { dyn::PrewarmWorkerScratch(n_hint, rounds_hint); };
/// `points_hint` ~ live points served per query (sizes stacks, heaps and
/// report buffers), `rounds_hint` ~ Monte-Carlo rounds (sizes winner
/// tables).
void PrewarmWorkerScratch(size_t points_hint, size_t rounds_hint);

}  // namespace dyn
}  // namespace pnn

#endif  // PNN_DYN_MERGE_H_
