// The manifest is the store's single atomically-replaced root pointer: it
// names the live log generation and the segment files backing each bucket
// (in snapshot order). Everything it references is fsynced — data and
// directory entries — before the manifest itself is installed via
// AtomicWriteFile, so a durable manifest implies a durable store image.
// Because installation is atomic, a manifest that exists but fails its
// checksum is disk damage, not a crash artifact, and recovery aborts
// rather than guessing.

#ifndef PNN_STORE_MANIFEST_H_
#define PNN_STORE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace pnn {
namespace store {

struct Manifest {
  uint64_t generation = 0;    // Live op log: oplog-<generation>.
  int64_t next_id = 0;        // Id floor at the checkpoint (replay can raise it).
  uint64_t move_seq = 0;      // Rebalance sequence floor (sharded stores).
  uint64_t engine_seed = 0;   // The engine seed every segment was cut under.
  /// Segment file ids in bucket snapshot order; bucket i of the recovered
  /// engine loads from seg-<segments[i]>.seg, and kMask records address
  /// buckets by ordinal into this list.
  std::vector<uint64_t> segments;
};

std::string EncodeManifest(const Manifest& m);

/// Installs `m` at `path` atomically (temp + fsync + rename + dir fsync).
/// On failure the previous manifest is still the runtime view, except for
/// the rename-ok/dirsync-failed ambiguity documented on AtomicWriteFile —
/// callers treat any non-OK install as "may or may not be durable" and
/// never reuse the generation number of a failed attempt.
util::Status WriteManifest(const std::string& path, const Manifest& m);

/// False if `path` does not exist (a fresh store). Aborts on a present but
/// corrupt manifest — see the header comment.
bool ReadManifest(const std::string& path, Manifest* out);

}  // namespace store
}  // namespace pnn

#endif  // PNN_STORE_MANIFEST_H_
