// util::Status / util::StatusOr — error propagation for the fallible
// layers (today: the durable store's IO path).
//
// The library's historical contract is PNN_CHECK: an invariant violation
// aborts, because a wrong answer is worse than no process. That is right
// for logic errors and disk corruption, but wrong for *environmental*
// failures — a transient ENOSPC during an op-log append must not kill a
// process that can still answer every read it has. Status is how such a
// failure travels up from the syscall to the layer that can decide
// (store::Store degrades to read-only; serve answers kUnavailable).
//
// Deliberately tiny: a code, a message, and the errno when one exists.
// Not a general-purpose absl::Status clone — only what the store needs.

#ifndef PNN_UTIL_STATUS_H_
#define PNN_UTIL_STATUS_H_

#include <cstring>
#include <optional>
#include <string>
#include <utility>

#include "src/util/check.h"

namespace pnn {
namespace util {

enum class StatusCode : uint8_t {
  kOk = 0,
  /// A syscall failed (write, fdatasync, rename, ...). Usually transient
  /// (ENOSPC, EIO) — the store degrades and re-probes rather than aborts.
  kIoError = 1,
  /// Data that exists but cannot be trusted (CRC mismatch beyond a torn
  /// tail). Recovery treats this as fatal, not degradable.
  kCorruption = 2,
  /// The operation cannot run in the current state (a degraded store
  /// refusing mutations). Maps to api::StatusCode::kUnavailable.
  kUnavailable = 3,
};

class Status {
 public:
  Status() = default;

  static Status Ok() { return Status(); }
  /// `sys_errno` 0 = no errno context (a logical failure on the IO path,
  /// e.g. write(2) returning 0).
  static Status IoError(std::string message, int sys_errno = 0) {
    return Status(StatusCode::kIoError, std::move(message), sys_errno);
  }
  static Status Corruption(std::string message) {
    return Status(StatusCode::kCorruption, std::move(message), 0);
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message), 0);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  int sys_errno() const { return errno_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string out;
    switch (code_) {
      case StatusCode::kOk: break;
      case StatusCode::kIoError: out = "IO_ERROR: "; break;
      case StatusCode::kCorruption: out = "CORRUPTION: "; break;
      case StatusCode::kUnavailable: out = "UNAVAILABLE: "; break;
    }
    out += message_;
    if (errno_ != 0) {
      out += " (";
      out += std::strerror(errno_);
      out += ")";
    }
    return out;
  }

 private:
  Status(StatusCode code, std::string message, int sys_errno)
      : code_(code), message_(std::move(message)), errno_(sys_errno) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  int errno_ = 0;
};

/// A value or the Status explaining its absence. value() asserts ok() —
/// use it where failure is a programming error (tests, startup paths that
/// abort anyway), and status()/ok() where failure is handled.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}       // NOLINT: implicit by design,
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT: mirrors absl.
    PNN_CHECK_MSG(!status_.ok(), "StatusOr constructed from an OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() {
    PNN_CHECK_MSG(ok(), "StatusOr::value() on an error status");
    return *value_;
  }
  const T& value() const {
    PNN_CHECK_MSG(ok(), "StatusOr::value() on an error status");
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Early-return plumbing for Status-returning functions.
#define PNN_RETURN_IF_ERROR(expr)                     \
  do {                                                \
    ::pnn::util::Status pnn_status_ = (expr);         \
    if (!pnn_status_.ok()) return pnn_status_;        \
  } while (0)

}  // namespace util
}  // namespace pnn

#endif  // PNN_UTIL_STATUS_H_
