// Numeric root finding for low-degree polynomials and small nonlinear
// systems. Quadratics are solved in closed form with the numerically stable
// formulation; cubics/quartics via Cardano/Ferrari with Newton polishing.
// All solvers return only real roots, in ascending order.

#ifndef PNN_GEOMETRY_SOLVERS_H_
#define PNN_GEOMETRY_SOLVERS_H_

#include <array>
#include <functional>

#include "src/geometry/point2.h"

namespace pnn {

/// Real roots container: up to `kMax` ascending values.
struct RealRoots {
  static constexpr int kMax = 4;
  std::array<double, kMax> root = {};
  int count = 0;

  void Add(double r) {
    if (count < kMax) root[count++] = r;
  }
  void SortAndDedupe(double tol);
};

/// Roots of a x^2 + b x + c = 0. Degenerates gracefully to linear/constant.
RealRoots SolveQuadratic(double a, double b, double c);

/// Roots of a x^3 + b x^2 + c x + d = 0.
RealRoots SolveCubic(double a, double b, double c, double d);

/// Roots of a x^4 + b x^3 + c x^2 + d x + e = 0 (Ferrari + polish).
RealRoots SolveQuartic(double a, double b, double c, double d, double e);

/// Bisection on [lo, hi]; requires f(lo) and f(hi) of opposite signs.
/// Refines with Newton-free bisection to ~1e-14 relative tolerance.
double Bisect(const std::function<double(double)>& f, double lo, double hi);

/// Finds all sign-change roots of f on [lo, hi] by scanning `samples`
/// subintervals and bisecting each bracket. Misses roots of even
/// multiplicity that do not change sign between samples.
void ScanRoots(const std::function<double(double)>& f, double lo, double hi,
               int samples, RealRoots* out);

/// Newton iteration for a 2x2 system F(p) = 0 with numeric Jacobian.
/// Returns true on convergence (|F| below tol); p is updated in place.
bool Newton2D(const std::function<Vec2(Point2)>& f, Point2* p, double tol,
              int max_iter = 30);

}  // namespace pnn

#endif  // PNN_GEOMETRY_SOLVERS_H_
