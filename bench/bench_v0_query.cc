// E5 — Theorem 2.11: after O(mu log mu) preprocessing, an NN!=0 query on
// V!=0 takes O(log n + t) time.
//
// Measures point-location query times on V!=0 against the Lemma 2.1
// linear scan, across n, reporting the average output size t.

#include <cstdio>
#include <vector>

#include "src/core/v0/nonzero_voronoi.h"
#include "src/uncertain/uncertain_point.h"
#include "src/util/table.h"
#include "src/util/timer.h"
#include "src/workload/generators.h"

namespace pnn {
namespace {

void Run() {
  std::printf("\n### V!=0 point-location queries vs linear scan\n\n");
  Table table({"n", "faces", "avg t", "locate us/q", "scan us/q", "speedup"});
  for (int n : {20, 40, 80, 160, 320}) {
    Rng rng(3 + n);
    double span = 4.0 * std::sqrt(static_cast<double>(n));
    auto disks = RandomDisks(n, span, 0.3, 1.5, &rng);
    UncertainSet upts;
    for (const auto& d : disks) {
      upts.push_back(UncertainPoint::UniformDisk(d.center, d.radius));
    }
    NonzeroVoronoi v0(disks);
    const int kQueries = 2000;
    std::vector<Point2> queries(kQueries);
    for (auto& q : queries) {
      q = {rng.Uniform(-span, span), rng.Uniform(-span, span)};
    }
    size_t total_t = 0;
    Timer t1;
    for (Point2 q : queries) total_t += v0.Query(q).size();
    double locate_us = t1.Micros() / kQueries;
    Timer t2;
    size_t total_t2 = 0;
    for (Point2 q : queries) total_t2 += NonzeroNNBruteForce(upts, q).size();
    double scan_us = t2.Micros() / kQueries;
    table.AddRow({Table::Int(n), Table::Int(v0.complexity().faces),
                  Table::Num(static_cast<double>(total_t) / kQueries, 3),
                  Table::Num(locate_us, 3), Table::Num(scan_us, 3),
                  Table::Num(scan_us / locate_us, 3)});
  }
  table.Print();
  std::printf(
      "\nShape check: locate time should stay near-flat in n while the scan "
      "grows linearly.\n");
}

}  // namespace
}  // namespace pnn

int main() {
  std::printf("# E5 (Theorem 2.11): NN!=0 queries by point location on V!=0\n");
  pnn::Run();
  return 0;
}
