// Sensor / moving-object tracking scenario (the [CKP04] motivation the
// paper opens with): each tracked object reports a last-known position
// plus a bounded uncertainty disk that grows with the time since the last
// update. A dispatcher asks, for a stream of incident locations, which
// units could be closest (NN!=0) and with what probability — and decides
// dispatch by probability, not by stale point estimates.
//
// The fleet churns every tick (fresh fixes shrink a unit's disk, staleness
// grows the others), so the tracker runs on pnn::dyn::DynamicEngine —
// addressed through the unified pnn::api request/response surface, the
// same QueryRequests a pnn::serve deployment would receive over the wire:
// per-tick updates are erase+reinsert pairs at microsecond cost instead of
// a full engine rebuild, and query latency is reported next to update
// latency to show both sides of the live workload.
//
//   ./examples/sensor_tracking

#include <cstdio>
#include <vector>

#include "src/api/engine_ref.h"
#include "src/api/query.h"
#include "src/core/v0/nonzero_voronoi.h"
#include "src/dyn/dynamic_engine.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

int main() {
  using namespace pnn;
  Rng rng(2024);

  // 12 patrol units; staleness in [0, 60] seconds, uncertainty radius
  // grows at 0.5 units/s up to a cap; a unit gets a fresh fix (radius
  // snaps back down, position drifts) with probability 1/3 per tick.
  struct Unit {
    Point2 last_fix;
    double staleness;
    dyn::Id id = -1;
  };
  auto radius_of = [](const Unit& u) { return std::min(1.0 + 0.5 * u.staleness, 25.0); };

  std::vector<Unit> units;
  std::vector<Circle> disks;
  dyn::Options dopt;
  dopt.engine.mc_rounds_override = 4000;  // Quantification backend for disks.
  dyn::DynamicEngine engine(dopt);
  api::EngineRef ref(&engine);
  for (int i = 0; i < 12; ++i) {
    Unit u{{rng.Uniform(-40, 40), rng.Uniform(-40, 40)}, rng.Uniform(0, 60)};
    u.id = engine.Insert(UncertainPoint::UniformDisk(u.last_fix, radius_of(u)));
    units.push_back(u);
    disks.push_back({u.last_fix, radius_of(u)});
  }

  // The full nonzero Voronoi diagram of the initial fleet doubles as a
  // dispatch map: its faces are the regions of constant candidate set.
  NonzeroVoronoi v0(disks);
  std::printf("dispatch map: %zu regions, %zu vertices (Theorem 2.5 object)\n\n",
              v0.complexity().faces, v0.complexity().vertices);

  for (int tick = 0; tick < 5; ++tick) {
    // Advance the fleet: every unit's disk changes, so every unit is an
    // erase+reinsert pair — the same api::QueryRequests a serving client
    // would put on the wire.
    Timer update_timer;
    int moved = 0;
    for (Unit& u : units) {
      if (rng.Bernoulli(1.0 / 3.0)) {
        u.last_fix = {u.last_fix.x + rng.Uniform(-5, 5),
                      u.last_fix.y + rng.Uniform(-5, 5)};
        u.staleness = 0;
        ++moved;
      } else {
        u.staleness += 5;
      }
      ref.Call(api::QueryRequest::Erase(u.id));
      api::QueryResponse ins = ref.Call(api::QueryRequest::Insert(
          UncertainPoint::UniformDisk(u.last_fix, radius_of(u))));
      u.id = ins.id;
    }
    double update_ms = update_timer.Millis();

    Point2 q{rng.Uniform(-45, 45), rng.Uniform(-45, 45)};
    Timer query_timer;
    api::QueryResponse candidates = ref.Call(api::QueryRequest::NonzeroNN(q));
    api::QueryResponse probs = ref.Call(api::QueryRequest::Quantify(q, 0.05));
    double query_ms = query_timer.Millis();

    std::printf("tick #%d: %d fresh fixes; incident at (%.1f, %.1f)\n", tick, moved,
                q.x, q.y);
    std::printf("  update latency: %.3f ms for %zu erase+insert pairs "
                "(%.1f us/update)  |  query latency: %.3f ms\n",
                update_ms, units.size(), 1000.0 * update_ms / (2 * units.size()),
                query_ms);

    std::printf("  %zu unit(s) could be closest:", candidates.ids.size());
    for (dyn::Id id : candidates.ids) {
      for (size_t i = 0; i < units.size(); ++i) {
        if (units[i].id == id) std::printf(" U%zu", i);
      }
    }
    std::printf("\n");

    // Dispatch decision: the most probably-nearest unit, with its odds.
    api::QueryResponse best = ref.Call(api::QueryRequest::MostLikelyNN(q, 0.05));
    double best_p = 0;
    size_t best_unit = 0;
    for (const auto& e : probs.quants) {
      if (e.index == best.id) best_p = e.probability;
    }
    for (size_t i = 0; i < units.size(); ++i) {
      if (units[i].id == best.id) best_unit = i;
    }
    std::printf("  dispatch U%zu (P[nearest] ~ %.2f)\n", best_unit, best_p);
  }
  return 0;
}
