// Shard-router scaling: the same hotspot-churn mixed stream (arrivals
// clustered on a moving hotspot + departures + NN!=0 / quantify queries)
// through pnn::shard::ShardedEngine at increasing shard counts, with
// background maintenance and auto-rebalance on a shared pool and query
// runs fanned out by exec::BatchEngine. Reports ops/sec, query/update
// latency percentiles, rebalance activity, and the speedup over the
// 1-shard configuration; optionally emits JSON (the CI bench trajectory).
//
//   ./bench_shard_scaling [--quick] [--json PATH] [n] [ops]
//
// NOTE: shard scaling is a concurrency play — on a 1-core host the curve
// is flat (the recombination overhead even costs a few percent); the
// headline numbers need a multi-core machine. The JSON records
// host_cores so trajectories are comparable.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/exec/batch_engine.h"
#include "src/shard/sharded_engine.h"
#include "src/util/bench_json.h"
#include "src/util/table.h"
#include "src/util/timer.h"
#include "src/workload/streaming.h"

namespace pnn {
namespace {

int Run(int n, int ops, const char* json_path) {
  size_t cores = std::max<size_t>(1, std::thread::hardware_concurrency());
  std::printf("# Shard-router scaling (pnn::shard::ShardedEngine, n=%d, %zu cores)\n",
              n, cores);
  BenchJson json;
  json.AddMeta("bench", "shard_scaling");
  json.AddMeta("n", std::to_string(n));
  json.AddMeta("ops", std::to_string(ops));
  json.AddMeta("host_cores", std::to_string(cores));

  Table table({"shards", "ops/s", "qry p50us", "qry p99us", "upd p50us", "rebal moves",
               "speedup"});
  double baseline_ops_per_sec = 0.0;
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    // Identical stream per configuration: answers are shard-count
    // invariant (the differential tests assert it), only timing moves.
    Rng rng(2024);
    StreamingChurnOptions sopt;
    sopt.initial = n;
    sopt.ops = ops;
    sopt.churn = 0.2;
    sopt.arrival_weight = 1.0;
    sopt.departure_weight = 1.0;
    sopt.drift_weight = 1.0;
    sopt.discrete = true;
    sopt.quantify_fraction = 0.3;
    sopt.span = 200.0;
    sopt.hotspot_fraction = 0.8;  // Drifting arrival hotspot: keeps any
    sopt.hotspot_sigma = 10.0;    // fixed partition lopsided.
    auto full = GenerateStreamingChurn(sopt, &rng);
    std::vector<exec::MixedOp> setup(full.begin(), full.begin() + n);
    std::vector<exec::MixedOp> stream(full.begin() + n, full.end());

    exec::ThreadPool pool(cores);
    shard::Options ropt;
    ropt.num_shards = shards;
    ropt.placement = shard::PlacementKind::kSpatialKdMedian;
    ropt.pool = &pool;
    ropt.auto_rebalance = true;
    ropt.rebalance_min_points = 256;
    ropt.rebalance_max_imbalance = 1.5;
    shard::ShardedEngine engine(ropt);

    exec::BatchOptions bopt;
    bopt.num_threads = cores;
    exec::BatchEngine batch(&engine, bopt);
    batch.MixedBatch(setup, 0.1);  // Bulk fill, untimed.
    engine.WaitForMaintenance();

    Timer t;
    auto result = batch.MixedBatch(stream, 0.1);
    double seconds = t.Seconds();
    engine.WaitForMaintenance();
    const exec::BatchStats& s = result.stats;
    double ops_per_sec =
        seconds > 0 ? static_cast<double>(stream.size()) / seconds : 0.0;
    if (shards == 1) baseline_ops_per_sec = ops_per_sec;
    double speedup =
        baseline_ops_per_sec > 0 ? ops_per_sec / baseline_ops_per_sec : 0.0;
    shard::RebalanceStats rs = engine.rebalance_stats();

    table.AddRow({Table::Int(static_cast<int>(shards)), Table::Num(ops_per_sec, 0),
                  Table::Num(s.p50_micros, 1), Table::Num(s.p99_micros, 1),
                  Table::Num(s.update_p50_micros, 1),
                  Table::Int(static_cast<int>(rs.points_moved)),
                  Table::Num(speedup, 2)});
    char name[32];
    std::snprintf(name, sizeof(name), "shards_%u", shards);
    json.Add(name,
             {{"shards", static_cast<double>(shards)},
              {"stream_ops", static_cast<double>(stream.size())},
              {"ops_per_sec", ops_per_sec},
              {"query_p50_micros", s.p50_micros},
              {"query_p99_micros", s.p99_micros},
              {"update_p50_micros", s.update_p50_micros},
              {"update_p99_micros", s.update_p99_micros},
              {"spiral_plans", static_cast<double>(s.spiral_plans)},
              {"monte_carlo_plans", static_cast<double>(s.monte_carlo_plans)},
              {"rebalance_passes", static_cast<double>(rs.passes)},
              {"rebalance_points_moved", static_cast<double>(rs.points_moved)},
              {"speedup_vs_1_shard", speedup}});
  }
  table.Print();

  if (json_path != nullptr) {
    if (!json.WriteFile(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path);
      return 2;
    }
    std::printf("\nwrote %s\n", json_path);
  }
  std::printf("\nShape note: flat curve expected on few-core hosts; compare "
              "trajectories at equal host_cores.\n");
  return 0;
}

}  // namespace
}  // namespace pnn

int main(int argc, char** argv) {
  int n = 20000, ops = 8000;
  const char* json_path = nullptr;
  std::vector<int> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      n = 4000;
      ops = 2000;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      positional.push_back(std::atoi(argv[i]));
    }
  }
  if (!positional.empty()) n = positional[0];
  if (positional.size() > 1) ops = positional[1];
  if (n <= 0 || ops <= 0) {
    std::fprintf(stderr, "usage: %s [--quick] [--json PATH] [n] [ops]\n", argv[0]);
    return 2;
  }
  return pnn::Run(n, ops, json_path);
}
