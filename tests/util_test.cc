// Tests for the util module: stats, rng determinism, tables.

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "src/util/arena.h"
#include "src/util/bench_json.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace pnn {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(Rng, ForkIndependence) {
  Rng a(42);
  Rng child = a.Fork();
  // The child stream should not replay the parent stream.
  Rng b(42);
  b.Fork();
  EXPECT_EQ(child.Uniform(0, 1), Rng(42).Fork().Uniform(0, 1));
}

TEST(Rng, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
    int64_t n = rng.UniformInt(-2, 2);
    EXPECT_GE(n, -2);
    EXPECT_LE(n, 2);
  }
}

TEST(Summary, Moments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.Add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(LogLogSlope, RecoversExponent) {
  std::vector<std::pair<double, double>> cubic;
  for (double n : {10, 20, 40, 80, 160}) cubic.push_back({n, 7.0 * n * n * n});
  EXPECT_NEAR(LogLogSlope(cubic), 3.0, 1e-9);

  std::vector<std::pair<double, double>> linear;
  for (double n : {10, 20, 40, 80}) linear.push_back({n, 0.5 * n});
  EXPECT_NEAR(LogLogSlope(linear), 1.0, 1e-9);
}

TEST(LogLogSlope, SkipsNonPositive) {
  std::vector<std::pair<double, double>> pts = {
      {0, 5}, {-1, 5}, {10, 0}, {2, 8}, {4, 32}};
  EXPECT_NEAR(LogLogSlope(pts), 2.0, 1e-9);
}

TEST(SplitSeed, DeterministicAndStreamDependent) {
  EXPECT_EQ(SplitSeed(42, 0), SplitSeed(42, 0));
  EXPECT_NE(SplitSeed(42, 0), SplitSeed(42, 1));
  EXPECT_NE(SplitSeed(42, 0), SplitSeed(43, 0));
  // Streams of the same seed produce decorrelated draws.
  Rng a = MakeStreamRng(7, 0), b = MakeStreamRng(7, 1);
  int agree = 0;
  for (int i = 0; i < 100; ++i) {
    agree += a.UniformInt(0, 9) == b.UniformInt(0, 9);
  }
  EXPECT_LT(agree, 50);
}

TEST(Percentile, MatchesOrderStatistics) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(Percentile(&empty, 50), 0.0);
  std::vector<double> one = {3.0};
  EXPECT_DOUBLE_EQ(Percentile(&one, 99), 3.0);
  // The buffer is the caller's scratch: repeated calls reorder it in place
  // (no copies) but every percentile stays exact.
  std::vector<double> v = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(Percentile(&v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(&v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(&v, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(&v, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(&v, 87.5), 4.5);  // Interpolates between 4 and 5.
  // The multi-cut API sorts once and agrees with the one-shot calls.
  std::vector<double> w = {5, 1, 4, 2, 3};
  std::vector<double> cuts = Percentiles(&w, {0, 25, 50, 87.5, 100});
  ASSERT_EQ(cuts.size(), 5u);
  EXPECT_DOUBLE_EQ(cuts[0], 1.0);
  EXPECT_DOUBLE_EQ(cuts[1], 2.0);
  EXPECT_DOUBLE_EQ(cuts[2], 3.0);
  EXPECT_DOUBLE_EQ(cuts[3], 4.5);
  EXPECT_DOUBLE_EQ(cuts[4], 5.0);
  std::vector<double> none;
  EXPECT_EQ(Percentiles(&none, {50, 99}), (std::vector<double>{0.0, 0.0}));
}

TEST(Table, FormatsWithoutCrashing) {
  Table t({"n", "vertices", "slope"});
  t.AddRow({Table::Int(10), Table::Int(123), Table::Num(2.97)});
  t.AddRow({Table::Int(100), Table::Int(456789), Table::Num(3.01)});
  t.Print();  // Smoke test; output inspected by humans.
  EXPECT_EQ(Table::Int(-5), "-5");
  EXPECT_EQ(Table::Num(2.5, 2), "2.5");
}

TEST(ScratchVec, PrewarmPreSizesThePool) {
  // A distinct element type keeps this test independent of pools other
  // tests on this thread may have grown.
  struct Marker {
    double payload[2];
  };
  util::ScratchVec<Marker>::Prewarm(2, 512);
  util::ScratchVec<Marker> a;
  util::ScratchVec<Marker> b;  // Nested lease: second pooled buffer.
  EXPECT_GE(a->capacity(), 512u);
  EXPECT_GE(b->capacity(), 512u);
}

TEST(ScratchVec, PrewarmKeepsExistingLargerCapacity) {
  struct Marker2 {
    int payload;
  };
  util::ScratchVec<Marker2>::Prewarm(1, 1024);
  util::ScratchVec<Marker2>::Prewarm(1, 16);  // Must not shrink the buffer.
  util::ScratchVec<Marker2> lease;
  EXPECT_GE(lease->capacity(), 1024u);
}

TEST(BenchJson, SerializesEntriesAndMeta) {
  BenchJson json;
  json.AddMeta("host", "ci \"runner\"");
  json.Add("churn_0.2", {{"ops_per_sec", 12345.5}, {"speedup", 11.0}});
  json.Add("churn_0.5", {{"ops_per_sec", 67890.0}});
  std::string s = json.ToString();
  EXPECT_NE(s.find("\"host\": \"ci \\\"runner\\\"\""), std::string::npos);
  EXPECT_NE(s.find("\"name\": \"churn_0.2\""), std::string::npos);
  EXPECT_NE(s.find("\"ops_per_sec\": 12345.5"), std::string::npos);
  EXPECT_NE(s.find("\"speedup\": 11"), std::string::npos);
  // Entries are comma-separated; the document closes cleanly.
  EXPECT_NE(s.find("}},\n"), std::string::npos);
  EXPECT_EQ(s.back(), '\n');
  // Non-finite metrics degrade to null instead of invalid JSON.
  BenchJson bad;
  bad.Add("x", {{"inf", std::numeric_limits<double>::infinity()}});
  EXPECT_NE(bad.ToString().find("\"inf\": null"), std::string::npos);
}

}  // namespace
}  // namespace pnn
