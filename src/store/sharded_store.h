// Durable N-shard store: one StoreCore (segments + op log + manifest) per
// shard under <dir>/shard-<i>/, wired into shard::ShardedEngine through
// its UpdateListener write-ahead hook — every acked Insert/Erase/move is
// appended (and by default fdatasync'd) to the owning shard's log BEFORE
// the router applies it.
//
// Rebalance moves are the cross-shard case: OnMove logs the move as an
// (id, point, move_seq) delta on BOTH shards — kMoveIn on the destination
// first, then kMoveOut on the source, each synced before the engines
// change. A crash between the two leaves the id live in both shards'
// logged state; recovery resolves the duplicate toward the highest
// move_seq (the destination's kMoveIn always carries a newer seq than
// whatever last placed the id on the source) and durably erases the loser,
// so a mid-move crash recovers to a consistent single placement.
//
// IO failures degrade per shard (see store.h "Failure model"): a shard
// whose log cannot ack vetoes its mutations through the listener hooks —
// the router applies nothing — while the other shards and all queries
// keep working. A half-logged move (kMoveIn durable on the destination,
// kMoveOut append failed on the source) is rolled back by truncating the
// destination's log to its pre-move offset; otherwise the dangling
// kMoveIn would resurrect the point after a crash even though the move
// was refused.

#ifndef PNN_STORE_SHARDED_STORE_H_
#define PNN_STORE_SHARDED_STORE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/shard/sharded_engine.h"
#include "src/store/store.h"

namespace pnn {
namespace store {

/// Thread safety matches ShardedEngine: queries through engine() are
/// lock-free and concurrent; mutations serialize on the router's update
/// mutex, with the listener's log work under a nested store mutex.
class ShardedStore : public shard::UpdateListener {
 public:
  struct Options {
    /// Router configuration. `sharded.listener` is overwritten (the store
    /// is the listener); the per-shard engine seed is pinned into every
    /// shard's manifest and must match on reopen.
    shard::Options sharded;
    /// Fdatasync each shard's log before the mutation applies.
    bool fsync = true;
  };

  /// Opens or initializes <dir>/shard-<i>/ for every shard, recovers each
  /// (segments + log replay), resolves mid-move cross-shard duplicates by
  /// move_seq, and seals the router. Corruption beyond a torn log tail
  /// aborts.
  static std::unique_ptr<ShardedStore> Open(const std::string& dir,
                                            Options options);

  ~ShardedStore() override;

  /// Logs to the owning shard, syncs, applies, acks (the router invokes
  /// the write-ahead listener internally). Non-OK when the owning shard's
  /// store is degraded and could not heal — the op was vetoed before any
  /// state changed.
  util::StatusOr<dyn::Id> Insert(UncertainPoint point);

  /// OK(false) if `id` is not live (nothing logged); non-OK when the
  /// owning shard's store refused the ack.
  util::StatusOr<bool> Erase(dyn::Id id);

  /// Forces a log rotation on every shard (healing degraded ones first).
  /// Returns the first failure but still attempts every shard. Requires
  /// external quiescence: no concurrent mutations or rebalance (a rotation
  /// between another op's log append and its apply would drop that op from
  /// the new generation).
  util::Status Checkpoint();

  /// False while ANY shard's store is degraded read-only (that shard's
  /// mutations are vetoed until a heal succeeds; queries keep serving).
  bool healthy() const;
  /// The first degraded shard's error (Ok when healthy).
  util::Status status() const;

  /// The live router. Mutating it directly is safe — the listener is
  /// wired in, so even engine().Insert() is durable — but prefer the
  /// store's methods.
  const shard::ShardedEngine& engine() const { return *engine_; }
  shard::ShardedEngine& engine() { return *engine_; }

  uint32_t num_shards() const { return static_cast<uint32_t>(cores_.size()); }
  std::vector<Stats> stats() const;  // One entry per shard.
  const std::string& dir() const { return dir_; }

  // shard::UpdateListener — invoked by the router under its update mutex,
  // before (On*) / after (OnApplied) each mutation applies. Each hook
  // first tries to heal a degraded core; false = veto (the shard's store
  // still cannot ack — the router must not apply the mutation):
  bool OnInsert(uint32_t shard, dyn::Id id, const UncertainPoint& point) override;
  bool OnErase(uint32_t shard, dyn::Id id) override;
  bool OnMove(uint32_t src, uint32_t dst, dyn::Id id,
              const UncertainPoint& point) override;
  void OnApplied(uint32_t shard) override;

 private:
  ShardedStore(const std::string& dir, Options options);
  void Recover();
  util::Status EnsureShardHealthyLocked(uint32_t shard);
  bool Veto(util::Status status);  // Records the error, returns false.

  std::string dir_;
  Options options_;
  /// Guards cores_ and the counters. Lock order: router mutex -> mu_
  /// (listener callbacks); Checkpoint/stats take mu_ alone.
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<StoreCore>> cores_;
  dyn::Id next_id_ = 0;          // Mirrors the router's id counter.
  uint64_t next_move_seq_ = 1;   // Monotone across all shards' moves.
  /// Veto channel from the listener hooks back to Insert/Erase (the
  /// router's return values alone cannot distinguish "not live" from
  /// "refused"). Under concurrent mutations an error may be attributed to
  /// the wrong caller, but only while some shard genuinely refused an op —
  /// the status is correct even when the correlation is approximate.
  uint64_t veto_count_ = 0;
  util::Status last_veto_error_;
  /// Declared last: destroyed first, so background rebalance quiesces
  /// (via the router's destructor) while the listener and cores are
  /// still alive.
  std::unique_ptr<shard::ShardedEngine> engine_;
};

}  // namespace store
}  // namespace pnn

#endif  // PNN_STORE_SHARDED_STORE_H_
