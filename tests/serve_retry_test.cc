// serve::Client transport-error taxonomy and retry loop:
//   * Call() distinguishes never-connected, timeout (connection up, no
//     answer yet), disconnect (EOF mid-call), and a healthy response;
//   * CallWithRetry() reconnects to a restarted server on the same port
//     and resends under the SAME request id;
//   * kUnavailable responses from a degraded store are retried until the
//     disk heals, turning an outage into latency;
//   * updates are NOT resent after a timeout by default (the op may have
//     applied server-side), queries are; retry_updates opts into
//     at-least-once.

#include "src/serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/api/engine_ref.h"
#include "src/api/query.h"
#include "src/fault/fault.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/shard/sharded_engine.h"
#include "src/store/store.h"
#include "src/workload/generators.h"

namespace pnn {
namespace serve {
namespace {

namespace fs = std::filesystem;

std::unique_ptr<shard::ShardedEngine> MakeBackend(int points = 20) {
  shard::Options sopt;
  sopt.num_shards = 2;
  sopt.shard.engine.seed = 77;
  sopt.shard.engine.mc_rounds_override = 48;
  auto engine = std::make_unique<shard::ShardedEngine>(sopt);
  Rng rng(901);
  auto locs = RandomDiscreteLocations(points, 3, 25, 4, &rng);
  for (const auto& l : locs) {
    std::vector<double> w(l.size(), 1.0 / static_cast<double>(l.size()));
    engine->Insert(UncertainPoint::Discrete(l, w));
  }
  return engine;
}

UncertainPoint OnePoint() {
  return UncertainPoint::Discrete({{1, 1}, {2, 2}}, {0.5, 0.5});
}

/// A listener that accepts one connection, counts the request frames it
/// receives, and never answers — the "hung server" for timeout tests.
class BlackHole {
 public:
  bool Start() {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return false;
    int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        listen(listen_fd_, 4) != 0) {
      return false;
    }
    socklen_t len = sizeof(addr);
    getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { Run(); });
    return true;
  }

  ~BlackHole() {
    shutdown(listen_fd_, SHUT_RDWR);
    close(listen_fd_);
    if (conn_fd_ >= 0) shutdown(conn_fd_, SHUT_RDWR);
    if (thread_.joinable()) thread_.join();
    if (conn_fd_ >= 0) close(conn_fd_);
  }

  uint16_t port() const { return port_; }
  int frames_seen() const { return frames_.load(); }

 private:
  void Run() {
    conn_fd_ = accept(listen_fd_, nullptr, nullptr);
    if (conn_fd_ < 0) return;
    FrameBuffer rx;
    std::string payload;
    char buf[4096];
    for (;;) {
      while (rx.Next(&payload) == FrameBuffer::Result::kFrame) ++frames_;
      ssize_t r = read(conn_fd_, buf, sizeof(buf));
      if (r <= 0) return;
      rx.Append(buf, static_cast<size_t>(r));
    }
  }

  int listen_fd_ = -1;
  int conn_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<int> frames_{0};
  std::thread thread_;
};

TEST(ServeRetry, NeverConnectedIsNotConnected) {
  Client client;
  CallResult r = client.Call(api::QueryRequest::NonzeroNN({0, 0}));
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error(), TransportError::kNotConnected);
  EXPECT_EQ(client.last_transport_error(), TransportError::kNotConnected);
  EXPECT_STREQ(TransportErrorName(r.error()), "NOT_CONNECTED");
}

TEST(ServeRetry, HungServerIsTimeoutAndConnectionSurvives) {
  BlackHole hole;
  ASSERT_TRUE(hole.Start());
  ClientOptions copt;
  copt.recv_timeout_ms = 100;
  Client client(copt);
  ASSERT_TRUE(client.Connect(hole.port()));
  CallResult r = client.Call(api::QueryRequest::NonzeroNN({0, 0}));
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error(), TransportError::kTimeout);
  // A timeout does not tear the connection down.
  EXPECT_TRUE(client.connected());
}

TEST(ServeRetry, PeerCloseIsDisconnected) {
  auto backend = MakeBackend();
  auto server = std::make_unique<Server>(api::EngineRef(backend.get()));
  ASSERT_TRUE(server->Start());
  Client client;
  ASSERT_TRUE(client.Connect(server->port()));
  ASSERT_TRUE(client.Call(api::QueryRequest::NonzeroNN({0, 0})));
  server.reset();  // Stop: the server closes every connection.
  CallResult r = client.Call(api::QueryRequest::NonzeroNN({0, 0}));
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error(), TransportError::kDisconnected);
  EXPECT_FALSE(client.connected());
}

TEST(ServeRetry, RetryReconnectsToRestartedServer) {
  auto backend = MakeBackend();
  uint16_t port = 0;
  auto server = std::make_unique<Server>(api::EngineRef(backend.get()));
  ASSERT_TRUE(server->Start());
  port = server->port();

  Client client;
  ASSERT_TRUE(client.Connect(port));
  ASSERT_TRUE(client.Call(api::QueryRequest::NonzeroNN({0, 0})));

  // Kill and restart on the same port (SO_REUSEADDR), then retry: the
  // client must notice the dead connection and redial.
  server.reset();
  ServerOptions sopt;
  sopt.port = port;
  Server restarted(api::EngineRef(backend.get()), sopt);
  ASSERT_TRUE(restarted.Start());

  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 10;
  Point2 q{3, 4};
  CallResult r = client.CallWithRetry(api::QueryRequest::NonzeroNN(q), policy);
  ASSERT_TRUE(r) << TransportErrorName(r.error());
  EXPECT_TRUE(r->ok());
  EXPECT_EQ(r->ids, backend->NonzeroNN(q));
}

TEST(ServeRetry, UnavailableIsRetriedUntilTheStoreHeals) {
  std::string dir = testing::TempDir() + "/serve_retry_store";
  fs::remove_all(dir);
  store::Store::Options sopt;
  sopt.dynamic.engine.seed = 77;
  sopt.dynamic.engine.mc_rounds_override = 48;
  auto db = store::Store::Open(dir, sopt);
  Server server(api::EngineRef(db.get()));
  ASSERT_TRUE(server.Start());
  Client client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.Call(api::QueryRequest::Insert(OnePoint()))->ok());

  // Two fdatasync failures: attempt 1 degrades the store (kUnavailable),
  // attempt 2's heal probe fails too, attempt 3 heals and applies. A
  // plain Call would surface the outage; the retry loop rides it out.
  fault::Arm("store.fdatasync", fault::FireTimesThenHeal(2));
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 5;
  CallResult r = client.CallWithRetry(api::QueryRequest::Insert(OnePoint()), policy);
  fault::DisarmAll();
  ASSERT_TRUE(r) << TransportErrorName(r.error());
  EXPECT_EQ(r->status, api::StatusCode::kOk) << r->message;
  EXPECT_GE(r->id, 1);
  EXPECT_TRUE(db->healthy());
}

TEST(ServeRetry, TimedOutUpdateIsNotResentByDefault) {
  BlackHole hole;
  ASSERT_TRUE(hole.Start());
  ClientOptions copt;
  copt.recv_timeout_ms = 100;
  Client client(copt);
  ASSERT_TRUE(client.Connect(hole.port()));

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 5;
  CallResult r = client.CallWithRetry(api::QueryRequest::Insert(OnePoint()), policy);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error(), TransportError::kTimeout);
  // The insert hit the wire once and was never resent: it MAY have
  // applied, and at-most-once is the default.
  EXPECT_EQ(hole.frames_seen(), 1);
}

TEST(ServeRetry, TimedOutQueryIsResent) {
  BlackHole hole;
  ASSERT_TRUE(hole.Start());
  ClientOptions copt;
  copt.recv_timeout_ms = 100;
  Client client(copt);
  ASSERT_TRUE(client.Connect(hole.port()));

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 5;
  CallResult r = client.CallWithRetry(api::QueryRequest::NonzeroNN({0, 0}), policy);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error(), TransportError::kTimeout);
  EXPECT_EQ(hole.frames_seen(), 3) << "idempotent queries retry every attempt";
}

TEST(ServeRetry, RetryUpdatesOptsIntoAtLeastOnce) {
  BlackHole hole;
  ASSERT_TRUE(hole.Start());
  ClientOptions copt;
  copt.recv_timeout_ms = 100;
  Client client(copt);
  ASSERT_TRUE(client.Connect(hole.port()));

  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 5;
  policy.retry_updates = true;
  CallResult r = client.CallWithRetry(api::QueryRequest::Insert(OnePoint()), policy);
  ASSERT_FALSE(r);
  EXPECT_EQ(hole.frames_seen(), 2);
}

TEST(ServeRetry, PipelinedSendReceiveStillWork) {
  auto backend = MakeBackend();
  Server server(api::EngineRef(backend.get()));
  ASSERT_TRUE(server.Start());
  Client client;
  ASSERT_TRUE(client.Connect(server.port()));

  std::vector<uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    std::optional<uint64_t> id = client.Send(api::QueryRequest::NonzeroNN({0, 0}));
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  std::vector<uint64_t> got;
  for (int i = 0; i < 8; ++i) {
    std::optional<ResponseFrame> frame = client.Receive();
    ASSERT_TRUE(frame.has_value());
    EXPECT_TRUE(frame->response.ok());
    got.push_back(frame->request_id);
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, ids);
}

}  // namespace
}  // namespace serve
}  // namespace pnn
