#include "src/core/pnn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/check.h"

namespace pnn {

Engine::Engine(UncertainSet points, Options options)
    : points_(std::move(points)), options_(std::move(options)) {
  PNN_CHECK_MSG(!points_.empty(), "Engine needs at least one uncertain point");
  PNN_CHECK_MSG(options_.default_eps > 0 && options_.default_eps < 1,
                "Options::default_eps must be in (0,1)");
  PNN_CHECK_MSG(options_.mc_delta > 0 && options_.mc_delta < 1,
                "Options::mc_delta must be in (0,1)");
  PNN_CHECK_MSG(
      options_.spiral_budget_fraction > 0 && options_.spiral_budget_fraction <= 1,
      "Options::spiral_budget_fraction must be in (0,1]");
  PNN_CHECK_MSG(
      options_.mc_stream_ids.empty() || options_.mc_stream_ids.size() == points_.size(),
      "Options::mc_stream_ids must be empty or have one id per point");
  for (const auto& p : points_) {
    all_discrete_ = all_discrete_ && p.is_discrete();
    all_continuous_ = all_continuous_ && !p.is_discrete();
    total_complexity_ += p.DescriptionComplexity();
  }
  if (all_continuous_) {
    std::vector<Circle> disks;
    for (const auto& p : points_) disks.push_back(p.disk().support);
    disk_index_ = std::make_unique<NonzeroNNIndex>(disks);
  }
  if (all_discrete_) {
    std::vector<std::vector<Point2>> locs;
    for (const auto& p : points_) locs.push_back(p.discrete().locations);
    discrete_index_ = std::make_unique<DiscreteNonzeroNNIndex>(locs);
    spiral_ = std::make_unique<SpiralSearchPNN>(points_);
  }
}

double Engine::ResolveEps(std::optional<double> eps_opt) const {
  double eps = eps_opt.value_or(options_.default_eps);
  PNN_CHECK_MSG(eps > 0 && eps < 1, "eps must be in (0,1)");
  return eps;
}

std::vector<int> Engine::NonzeroNN(Point2 q) const {
  if (disk_index_) return disk_index_->Query(q);
  if (discrete_index_) return discrete_index_->Query(q);
  return NonzeroNNBruteForce(points_, q);  // Mixed inputs: linear scan.
}

double Engine::NonzeroDelta(Point2 q, const std::vector<char>* skip) const {
  if (disk_index_) return disk_index_->Delta(q, skip);
  if (discrete_index_) return discrete_index_->Delta(q, skip);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < points_.size(); ++i) {
    if (skip != nullptr && (*skip)[i]) continue;
    best = std::min(best, points_[i].MaxDistance(q));
  }
  return best;
}

std::vector<int> Engine::NonzeroNNWithin(Point2 q, double bound,
                                         const std::vector<char>* skip) const {
  if (disk_index_) return disk_index_->QueryWithin(q, bound, skip);
  if (discrete_index_) return discrete_index_->QueryWithin(q, bound, skip);
  std::vector<int> out;
  for (size_t i = 0; i < points_.size(); ++i) {
    if (skip != nullptr && (*skip)[i]) continue;
    if (points_[i].MinDistance(q) < bound) out.push_back(static_cast<int>(i));
  }
  return out;
}

QuantifyPlan Engine::PlanForQuantify(std::optional<double> eps_opt) const {
  double eps = ResolveEps(eps_opt);
  if (spiral_) {
    size_t budget = spiral_->RetrievalBound(eps);
    if (static_cast<double>(budget) <=
        options_.spiral_budget_fraction * static_cast<double>(total_complexity_)) {
      return QuantifyPlan::kSpiral;
    }
  }
  return QuantifyPlan::kMonteCarlo;
}

std::shared_ptr<const MonteCarloPNN> Engine::EnsureMonteCarlo(double eps) const {
  // Lock-free fast path: the prewarmed structure already covers this eps.
  auto cur = std::atomic_load_explicit(&monte_carlo_, std::memory_order_acquire);
  if (cur && cur->target_eps() <= eps) return cur;
  std::lock_guard<std::mutex> lock(lazy_mu_);
  cur = std::atomic_load_explicit(&monte_carlo_, std::memory_order_acquire);
  // Rebuild if absent or if a tighter eps is requested; queries holding a
  // snapshot of the old structure keep it alive through their shared_ptr.
  if (!cur || cur->target_eps() > eps) {
    MonteCarloPNN::Options mco;
    mco.eps = eps;
    mco.delta = options_.mc_delta;
    mco.seed = options_.seed;
    mco.rounds_override = options_.mc_rounds_override;
    mco.stream_ids = options_.mc_stream_ids;
    cur = std::make_shared<const MonteCarloPNN>(points_, mco);
    std::atomic_store_explicit(&monte_carlo_, cur, std::memory_order_release);
  }
  return cur;
}

std::shared_ptr<const ExpectedNNIndex> Engine::EnsureExpectedNN() const {
  // Same pattern as EnsureMonteCarlo: lock-free once built, lock to build.
  auto cur = std::atomic_load_explicit(&expected_nn_, std::memory_order_acquire);
  if (cur) return cur;
  std::lock_guard<std::mutex> lock(lazy_mu_);
  cur = std::atomic_load_explicit(&expected_nn_, std::memory_order_acquire);
  if (!cur) {
    cur = std::make_shared<const ExpectedNNIndex>(&points_);
    std::atomic_store_explicit(&expected_nn_, cur, std::memory_order_release);
  }
  return cur;
}

void Engine::Prewarm(std::optional<double> eps_opt) const {
  double eps = ResolveEps(eps_opt);
  if (PlanForQuantify(eps) == QuantifyPlan::kMonteCarlo) EnsureMonteCarlo(eps);
}

size_t Engine::MonteCarloRounds() const {
  auto cur = std::atomic_load_explicit(&monte_carlo_, std::memory_order_acquire);
  return cur ? cur->rounds() : 0;
}

std::vector<Quantification> Engine::Quantify(Point2 q,
                                             std::optional<double> eps_opt) const {
  double eps = ResolveEps(eps_opt);
  if (PlanForQuantify(eps) == QuantifyPlan::kSpiral) return spiral_->Query(q, eps);
  return EnsureMonteCarlo(eps)->Query(q);
}

std::vector<Quantification> Engine::QuantifyExact(Point2 q) const {
  if (all_discrete_) return QuantifyExactDiscrete(points_, q);
  PNN_CHECK_MSG(all_continuous_,
                "QuantifyExact supports all-discrete or all-continuous inputs");
  return QuantifyNumericContinuous(points_, q, 1e-8);
}

std::vector<Quantification> Engine::ThresholdNN(Point2 q, double tau,
                                                std::optional<double> eps) const {
  PNN_CHECK_MSG(tau >= 0 && tau <= 1,
                "ThresholdNN tau must be a probability in [0,1]");
  return ThresholdFilter(Quantify(q, eps), tau);
}

int Engine::MostLikelyNN(Point2 q, std::optional<double> eps) const {
  return pnn::MostLikelyNN(Quantify(q, eps));
}

int Engine::ExpectedDistanceNN(Point2 q) const {
  return EnsureExpectedNN()->Nearest(q);
}

}  // namespace pnn
