#include "src/dyn/dynamic_engine.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/dyn/answer_cache.h"
#include "src/dyn/merge.h"
#include "src/dyn/tail_cache.h"
#include "src/util/check.h"

namespace pnn {
namespace dyn {

// What one maintenance round will build: either a tail merge (the frozen
// tail plus every bucket the doubling rule absorbs) or a full compaction
// (everything live). Members are snapshotted under the lock; the bucket is
// built outside it.
struct DynamicEngine::MaintenancePlan {
  bool any = false;
  std::vector<size_t> absorbed;  // Indices into buckets_ at plan time.
  size_t frozen_tail = 0;        // Tail prefix consumed by the build.
  std::vector<Id> ids;           // Ascending members of the new bucket.
  UncertainSet points;           // Parallel to ids.
};

// One in-flight maintenance build, advanced a bounded step at a time by
// MaintenanceStep: the gathered plan, the sliced bucket builder consuming
// it, then the built bucket and its pre-splice prewarm progress.
struct DynamicEngine::BuildJob {
  MaintenancePlan plan;  // points are moved into the builder at creation.
  std::unique_ptr<SlicedBucketBuilder> builder;
  std::shared_ptr<const Bucket> built;
  size_t prewarm_rounds = 0;  // Monte-Carlo rounds to warm pre-splice.
  size_t prewarm_done = 0;
};

DynamicEngine::DynamicEngine(Options options) : options_(std::move(options)) {
  PNN_CHECK_MSG(options_.engine.mc_stream_ids.empty(),
                "dyn::Options::engine.mc_stream_ids is managed internally");
  PNN_CHECK_MSG(options_.tail_limit >= 1, "tail_limit must be >= 1");
  PNN_CHECK_MSG(options_.max_dead_fraction > 0 && options_.max_dead_fraction < 1,
                "max_dead_fraction must be in (0,1)");
  PNN_CHECK_MSG(options_.maintenance_lane == nullptr || options_.pool != nullptr,
                "maintenance_lane requires a pool");
  // Bucket kd builds fork per-subtree across the maintenance pool unless
  // the caller picked a dedicated build pool.
  if (options_.engine.build_pool == nullptr) {
    options_.engine.build_pool = options_.pool;
  }
  // Validate the shared engine options eagerly (Engine would only check
  // them at the first bucket build).
  PNN_CHECK_MSG(options_.engine.default_eps > 0 && options_.engine.default_eps < 1,
                "Options::default_eps must be in (0,1)");
  PNN_CHECK_MSG(options_.engine.mc_delta > 0 && options_.engine.mc_delta < 1,
                "Options::mc_delta must be in (0,1)");
  PNN_CHECK_MSG(options_.engine.spiral_budget_fraction > 0 &&
                    options_.engine.spiral_budget_fraction <= 1,
                "Options::spiral_budget_fraction must be in (0,1]");
  std::lock_guard<std::mutex> lock(mu_);
  PublishLocked();
}

DynamicEngine::DynamicEngine(const UncertainSet& initial, Options options)
    : DynamicEngine(std::move(options)) {
  if (initial.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<Id> ids(initial.size());
  for (size_t i = 0; i < initial.size(); ++i) {
    ids[i] = next_id_++;
    live_.emplace(ids[i], initial[i]);
    AddAggregatesLocked(initial[i]);
  }
  auto bucket = std::make_shared<const Bucket>(std::move(ids), initial, options_.engine);
  buckets_.push_back({bucket, nullptr, bucket->size()});
  PublishLocked();
}

DynamicEngine::DynamicEngine(std::vector<Id> ids, const UncertainSet& points,
                             Options options)
    : DynamicEngine(std::move(options)) {
  PNN_CHECK_MSG(ids.size() == points.size(), "ids must parallel points");
  if (points.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  for (size_t i = 0; i < points.size(); ++i) {
    PNN_CHECK_MSG(ids[i] >= 0 && (i == 0 || ids[i] > ids[i - 1]),
                  "bulk ids must be nonnegative, ascending and unique");
    live_.emplace(ids[i], points[i]);
    AddAggregatesLocked(points[i]);
  }
  next_id_ = ids.back() + 1;
  auto bucket = std::make_shared<const Bucket>(std::move(ids), points, options_.engine);
  buckets_.push_back({bucket, nullptr, bucket->size()});
  PublishLocked();
}

DynamicEngine::DynamicEngine(std::vector<RecoveredBucket> recovered,
                             Id next_id_floor, Options options)
    : DynamicEngine(std::move(options)) {
  PNN_CHECK_MSG(next_id_floor >= 0, "next_id_floor must be nonnegative");
  std::unique_lock<std::mutex> lock(mu_);
  // Aggregates are bulk-built below: element-wise multiset inserts
  // (AddAggregatesLocked) are the recovery bottleneck at scale, while
  // range-constructing from a sorted vector is linear.
  std::vector<double> all_weights;
  std::vector<size_t> all_ks;
  for (RecoveredBucket& rb : recovered) {
    PNN_CHECK_MSG(rb.bucket != nullptr, "recovered bucket must not be null");
    const std::vector<Id>& ids = rb.bucket->ids();
    const UncertainSet& pts = rb.bucket->points();
    PNN_CHECK_MSG(rb.dead.empty() || rb.dead.size() == ids.size(),
                  "recovered dead mask must parallel the bucket");
    size_t live = 0;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (!rb.dead.empty() && rb.dead[i]) continue;
      // Hinted: segment ids ascend, so append is amortized O(1); the
      // size delta still catches duplicate ids across buckets.
      size_t before = live_.size();
      live_.emplace_hint(live_.end(), ids[i], pts[i]);
      PNN_CHECK_MSG(live_.size() == before + 1,
                    "recovered buckets hold a duplicate live id");
      const UncertainPoint& p = pts[i];
      if (p.is_discrete()) {
        ++discrete_count_;
        const auto& d = p.discrete();
        all_weights.insert(all_weights.end(), d.weights.begin(),
                           d.weights.end());
      } else {
        ++continuous_count_;
      }
      total_complexity_ += p.DescriptionComplexity();
      all_ks.push_back(std::max<size_t>(p.DescriptionComplexity(), 1));
      ++live;
      if (ids[i] >= next_id_) next_id_ = ids[i] + 1;
    }
    Snapshot::BucketRef ref;
    ref.bucket = std::move(rb.bucket);
    ref.dead = rb.dead.empty()
                   ? nullptr
                   : std::make_shared<const std::vector<char>>(std::move(rb.dead));
    ref.live_count = live;
    buckets_.push_back(std::move(ref));
  }
  std::sort(all_weights.begin(), all_weights.end());
  live_weights_ = std::multiset<double>(all_weights.begin(), all_weights.end());
  std::sort(all_ks.begin(), all_ks.end());
  live_ks_ = std::multiset<size_t>(all_ks.begin(), all_ks.end());
  if (next_id_floor > next_id_) next_id_ = next_id_floor;
  PublishLocked();
}

DynamicEngine::~DynamicEngine() { WaitForMaintenance(); }

SnapshotIntrospection Introspect(const Snapshot& snap) {
  SnapshotIntrospection out;
  out.buckets.reserve(snap.buckets.size());
  for (const Snapshot::BucketRef& bref : snap.buckets) {
    SnapshotIntrospection::BucketView view;
    view.bucket = bref.bucket.get();
    view.dead = bref.dead.get();
    view.live_count = bref.live_count;
    out.buckets.push_back(view);
  }
  out.tail = snap.tail.get();
  out.tail_dead = snap.tail_dead.get();
  out.live_count = snap.live_count;
  return out;
}

void DynamicEngine::PublishLocked() {
  auto s = std::make_shared<Snapshot>();
  s->buckets = buckets_;
  s->tail = std::make_shared<const std::vector<TailEntry>>(tail_);
  s->tail_dead = tail_dead_count_ == 0
                     ? nullptr
                     : std::make_shared<const std::vector<char>>(tail_dead_mask_);
  if (tail_.size() > tail_dead_count_) s->tail_mc = std::make_shared<TailMcCache>();
  if (options_.answer_cache && !live_.empty()) {
    s->answers = std::make_shared<AnswerCache>();
  }
  s->live_count = live_.size();
  s->discrete_count = discrete_count_;
  s->continuous_count = continuous_count_;
  s->total_complexity = total_complexity_;
  s->max_k = live_ks_.empty() ? 1 : *live_ks_.rbegin();
  // Mirrors SpiralSearchPNN's spread computation (wmin/wmax seeds 1.0/0.0).
  s->wmin = live_weights_.empty() ? 1.0 : std::min(1.0, *live_weights_.begin());
  s->wmax = live_weights_.empty() ? 0.0 : *live_weights_.rbegin();
  s->rho = s->wmax / s->wmin;
  std::atomic_store_explicit(&snapshot_, std::shared_ptr<const Snapshot>(std::move(s)),
                             std::memory_order_release);
}

void DynamicEngine::AddAggregatesLocked(const UncertainPoint& p) {
  if (p.is_discrete()) {
    ++discrete_count_;
    const auto& d = p.discrete();
    for (double w : d.weights) live_weights_.insert(w);
  } else {
    ++continuous_count_;
  }
  total_complexity_ += p.DescriptionComplexity();
  live_ks_.insert(std::max<size_t>(p.DescriptionComplexity(), 1));
}

void DynamicEngine::RemoveAggregatesLocked(const UncertainPoint& p) {
  if (p.is_discrete()) {
    --discrete_count_;
    for (double w : p.discrete().weights) {
      live_weights_.erase(live_weights_.find(w));
    }
  } else {
    --continuous_count_;
  }
  total_complexity_ -= p.DescriptionComplexity();
  live_ks_.erase(live_ks_.find(std::max<size_t>(p.DescriptionComplexity(), 1)));
}

Id DynamicEngine::Insert(UncertainPoint point) {
  std::unique_lock<std::mutex> lock(mu_);
  PNN_CHECK_MSG(next_id_ < std::numeric_limits<Id>::max(), "id space exhausted");
  Id id = next_id_++;
  InsertEntryLocked(id, std::move(point));
  PublishLocked();
  MaybeStartMaintenanceLocked(lock);
  return id;
}

void DynamicEngine::InsertWithId(Id id, UncertainPoint point) {
  std::unique_lock<std::mutex> lock(mu_);
  PNN_CHECK_MSG(id >= 0, "ids must be nonnegative");
  PNN_CHECK_MSG(live_.count(id) == 0, "InsertWithId id is already live");
  // A tombstoned copy of this id may still sit in a bucket or the tail
  // (shard migration round trip); deadness is positional, so appending a
  // fresh live entry alongside it is exact.
  if (id >= next_id_) next_id_ = id + 1;
  InsertEntryLocked(id, std::move(point));
  PublishLocked();
  MaybeStartMaintenanceLocked(lock);
}

void DynamicEngine::InsertEntryLocked(Id id, UncertainPoint point) {
  AddAggregatesLocked(point);
  tail_.push_back({id, point});
  tail_dead_mask_.push_back(0);
  live_.emplace(id, std::move(point));
}

bool DynamicEngine::IsLive(Id id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.count(id) != 0;
}

bool DynamicEngine::Erase(Id id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = live_.find(id);
  if (it == live_.end()) return false;
  RemoveAggregatesLocked(it->second);
  live_.erase(it);

  // Find the live copy: dead-masked copies of the same id may linger in
  // buckets (and the tail) after a shard migration round trip; skip them.
  bool in_bucket = false;
  for (auto& bref : buckets_) {
    int local = bref.bucket->LocalIndex(id);
    if (local < 0) continue;
    if (bref.dead && (*bref.dead)[local]) continue;  // Stale tombstoned copy.
    auto mask = bref.dead ? std::make_shared<std::vector<char>>(*bref.dead)
                          : std::make_shared<std::vector<char>>(bref.bucket->size(), 0);
    (*mask)[local] = 1;
    bref.dead = std::move(mask);
    --bref.live_count;
    in_bucket = true;
    break;
  }
  if (!in_bucket) {
    bool in_tail = false;
    for (size_t i = 0; i < tail_.size(); ++i) {
      if (tail_[i].id == id && tail_dead_mask_[i] == 0) {
        tail_dead_mask_[i] = 1;
        ++tail_dead_count_;
        in_tail = true;
        break;
      }
    }
    PNN_CHECK_MSG(in_tail, "live id missing from both buckets and tail");
  }
  if (building_) erased_during_build_.push_back(id);

  PublishLocked();
  MaybeStartMaintenanceLocked(lock);
  return true;
}

bool DynamicEngine::MaintenanceNeededLocked() const {
  size_t total = tail_.size();
  size_t dead = tail_dead_count_;
  for (const auto& bref : buckets_) {
    total += bref.bucket->size();
    dead += bref.bucket->size() - bref.live_count;
  }
  if (dead >= 8 && static_cast<double>(dead) >
                       options_.max_dead_fraction * static_cast<double>(total)) {
    return true;
  }
  return tail_.size() - tail_dead_count_ >= options_.tail_limit;
}

void DynamicEngine::MaybeStartMaintenanceLocked(std::unique_lock<std::mutex>& lock) {
  if (maintenance_running_ || !MaintenanceNeededLocked()) return;
  maintenance_running_ = true;
  if (options_.pool != nullptr) {
    ScheduleMaintenanceHop();
  } else {
    lock.unlock();
    MaintenanceLoop();
  }
}

void DynamicEngine::ScheduleMaintenanceHop() {
  if (options_.maintenance_lane != nullptr) {
    options_.maintenance_lane->Submit([this] { MaintenanceChain(); });
  } else {
    options_.pool->Submit([this] { MaintenanceChain(); });
  }
}

void DynamicEngine::MaintenanceChain() {
  // One bounded step per hop: between steps the job goes back through the
  // lane (or pool) queues, so queries fanning out on the pool and other
  // engines' maintenance interleave with a long build instead of waiting
  // out a monolithic one. When the step below returns false the engine
  // may be destroyed by a racing destructor — touch nothing after it.
  if (MaintenanceStep()) ScheduleMaintenanceHop();
}

DynamicEngine::MaintenancePlan DynamicEngine::DecidePlanLocked() {
  MaintenancePlan plan;
  size_t total = tail_.size();
  size_t dead = tail_dead_count_;
  for (const auto& bref : buckets_) {
    total += bref.bucket->size();
    dead += bref.bucket->size() - bref.live_count;
  }
  if (dead >= 8 && static_cast<double>(dead) >
                       options_.max_dead_fraction * static_cast<double>(total)) {
    // Compaction: rebuild the whole structure from the live set.
    plan.any = true;
    plan.frozen_tail = tail_.size();
    for (size_t i = 0; i < buckets_.size(); ++i) plan.absorbed.push_back(i);
    plan.ids.reserve(live_.size());
    plan.points.reserve(live_.size());
    for (const auto& [id, p] : live_) {
      plan.ids.push_back(id);
      plan.points.push_back(p);
    }
  } else if (tail_.size() - tail_dead_count_ >= options_.tail_limit) {
    // Tail merge with the Bentley–Saxe doubling rule: absorb every bucket
    // no larger than the accumulated merge, so an absorbed bucket at least
    // doubles — each point is rebuilt O(log n) times.
    plan.any = true;
    plan.frozen_tail = tail_.size();
    std::vector<std::pair<Id, const UncertainPoint*>> members;
    for (size_t i = 0; i < tail_.size(); ++i) {
      if (tail_dead_mask_[i] == 0) members.push_back({tail_[i].id, &tail_[i].point});
    }
    size_t merged = members.size();
    std::vector<char> take(buckets_.size(), 0);
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < buckets_.size(); ++i) {
        if (!take[i] && buckets_[i].live_count <= merged) {
          take[i] = 1;
          merged += buckets_[i].live_count;
          changed = true;
        }
      }
    }
    for (size_t i = 0; i < buckets_.size(); ++i) {
      if (!take[i]) continue;
      plan.absorbed.push_back(i);
      const auto& bref = buckets_[i];
      for (size_t j = 0; j < bref.bucket->size(); ++j) {
        if (bref.dead && (*bref.dead)[j]) continue;
        members.push_back({bref.bucket->ids()[j], &bref.bucket->points()[j]});
      }
    }
    std::sort(members.begin(), members.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    plan.ids.reserve(members.size());
    plan.points.reserve(members.size());
    for (const auto& [id, p] : members) {
      plan.ids.push_back(id);
      plan.points.push_back(*p);
    }
  }
  if (plan.any) {
    building_ = true;
    erased_during_build_.clear();
  }
  return plan;
}

void DynamicEngine::SpliceLocked(const MaintenancePlan& plan,
                                 std::shared_ptr<const Bucket> built) {
  for (auto it = plan.absorbed.rbegin(); it != plan.absorbed.rend(); ++it) {
    buckets_.erase(buckets_.begin() + static_cast<long>(*it));
  }
  tail_.erase(tail_.begin(), tail_.begin() + static_cast<long>(plan.frozen_tail));
  // Tombstones of frozen tail entries are either folded into the new
  // bucket's mask (erased during the build) or gone with their points; the
  // mask is positional, so dropping the consumed prefix is all it takes.
  tail_dead_mask_.erase(tail_dead_mask_.begin(),
                        tail_dead_mask_.begin() + static_cast<long>(plan.frozen_tail));
  tail_dead_count_ = 0;
  for (char d : tail_dead_mask_) tail_dead_count_ += d != 0;
  if (built != nullptr) {
    Snapshot::BucketRef ref{built, nullptr, built->size()};
    std::shared_ptr<std::vector<char>> mask;
    for (Id id : erased_during_build_) {
      int local = built->LocalIndex(id);
      if (local < 0) continue;
      if (!mask) mask = std::make_shared<std::vector<char>>(built->size(), 0);
      if (!(*mask)[local]) {
        (*mask)[local] = 1;
        --ref.live_count;
      }
    }
    ref.dead = mask;
    buckets_.push_back(std::move(ref));
  }
  building_ = false;
  erased_during_build_.clear();
  PublishLocked();
}

void DynamicEngine::MaintenanceLoop() {
  while (MaintenanceStep()) {
  }
}

bool DynamicEngine::MaintenanceStep() {
  if (job_ == nullptr) {
    // Decide (or finish): cheap, under the lock.
    std::lock_guard<std::mutex> lock(mu_);
    MaintenancePlan plan = DecidePlanLocked();
    if (!plan.any) {
      maintenance_running_ = false;
      cv_.notify_all();
      return false;
    }
    job_ = std::make_unique<BuildJob>();
    job_->plan = std::move(plan);
    if (!job_->plan.ids.empty()) {
      // The gathered ids and points move into the builder, whose staging
      // arrays become the finished structures' own storage — transient
      // build memory stays (gathered live set + one chunk), not a second
      // copy. The splice only reads plan.absorbed/frozen_tail.
      job_->builder = std::make_unique<SlicedBucketBuilder>(
          std::move(job_->plan.ids), std::move(job_->plan.points), options_.engine,
          options_.build_chunk);
    }
    return true;
  }

  BuildJob& job = *job_;
  if (job.builder != nullptr && !job.builder->done()) {
    // Build outside the lock: updates and queries proceed against the old
    // snapshot; erases landing meanwhile are logged and folded in at the
    // splice.
    job.builder->Step();
    return true;
  }
  if (job.builder != nullptr) {
    job.built = job.builder->Finish();
    job.builder.reset();
    if (options_.prewarm_after_build) {
      // Warm the new bucket before it is published, so the first query
      // against it never pays the lazy Monte-Carlo construction. A merge
      // preserves the live set, so the pre-splice aggregates give the same
      // plan and round count the post-splice snapshot will.
      auto snap = Snap();
      double eps = options_.engine.default_eps;
      if (snap->live_count > 0 && PlanFor(*snap, eps) == QuantifyPlan::kMonteCarlo) {
        job.prewarm_rounds = RoundsFor(*snap, eps);
      }
    }
    return true;
  }
  if (job.built != nullptr && job.prewarm_done < job.prewarm_rounds) {
    // Chunked prewarm: each step extends the round cache by about one
    // build_chunk's worth of sampled points (EnsureRounds shares the
    // already-built prefix, so batching costs nothing).
    size_t per = job.prewarm_rounds;
    if (options_.build_chunk > 0) {
      per = std::max<size_t>(
          1, options_.build_chunk / std::max<size_t>(1, job.built->size()));
    }
    job.prewarm_done = std::min(job.prewarm_rounds, job.prewarm_done + per);
    job.built->EnsureRounds(job.prewarm_done, options_.pool);
    return true;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    SpliceLocked(job.plan, std::move(job.built));
  }
  job_.reset();
  if (options_.prewarm_after_build) {
    // The splice published a fresh snapshot (and a fresh tail cache):
    // warm the tail samples too, so the whole post-build query path is
    // construction-free.
    auto snap = Snap();
    double eps = options_.engine.default_eps;
    if (snap->live_count > 0 && snap->tail_mc != nullptr &&
        PlanFor(*snap, eps) == QuantifyPlan::kMonteCarlo) {
      snap->tail_mc->Ensure(*snap, RoundsFor(*snap, eps), options_.engine.seed);
    }
  }
  return true;  // Re-check the predicate: more work may have accumulated.
}

void DynamicEngine::WaitForMaintenance() const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !maintenance_running_; });
}

double DynamicEngine::ResolveEps(std::optional<double> eps_opt) const {
  double eps = eps_opt.value_or(options_.engine.default_eps);
  PNN_CHECK_MSG(eps > 0 && eps < 1, "eps must be in (0,1)");
  return eps;
}

QuantifyPlan PlanForSnapshot(const Snapshot& snap, const Engine::Options& options,
                             double eps) {
  if (snap.all_discrete()) {
    size_t budget = SpiralSearchPNN::RetrievalBoundFor(snap.rho, snap.max_k, eps);
    if (static_cast<double>(budget) <= options.spiral_budget_fraction *
                                           static_cast<double>(snap.total_complexity)) {
      return QuantifyPlan::kSpiral;
    }
  }
  return QuantifyPlan::kMonteCarlo;
}

size_t McRoundsForSnapshot(const Snapshot& snap, const Engine::Options& options,
                           double eps) {
  if (options.mc_rounds_override > 0) return options.mc_rounds_override;
  return MonteCarloPNN::TheoreticalRounds(snap.live_count, snap.max_k, eps,
                                          options.mc_delta);
}

QuantifyPlan DynamicEngine::PlanFor(const Snapshot& snap, double eps) const {
  return PlanForSnapshot(snap, options_.engine, eps);
}

size_t DynamicEngine::RoundsFor(const Snapshot& snap, double eps) const {
  return McRoundsForSnapshot(snap, options_.engine, eps);
}

QuantifyPlan DynamicEngine::PlanForQuantify(std::optional<double> eps_opt) const {
  return PlanFor(*Snap(), ResolveEps(eps_opt));
}

void DynamicEngine::Prewarm(std::optional<double> eps_opt) const {
  double eps = ResolveEps(eps_opt);
  auto snap = Snap();
  if (snap->live_count == 0) return;
  if (PlanFor(*snap, eps) != QuantifyPlan::kMonteCarlo) return;
  size_t rounds = RoundsFor(*snap, eps);
  for (const auto& bref : snap->buckets) {
    if (bref.live_count > 0) bref.bucket->EnsureRounds(rounds, options_.pool);
  }
  if (snap->tail_mc != nullptr) {
    snap->tail_mc->Ensure(*snap, rounds, options_.engine.seed);
  }
}

std::vector<Id> DynamicEngine::NonzeroNN(Point2 q) const {
  auto snap = Snap();
  if (snap->live_count == 0) return {};
  return NonzeroNN(*snap, q);
}

std::vector<Id> DynamicEngine::NonzeroNN(const Snapshot& snap, Point2 q) const {
  std::vector<Id> out;
  NonzeroNNInto(snap, q, &out);
  return out;
}

void DynamicEngine::NonzeroNNInto(Point2 q, std::vector<Id>* out) const {
  auto snap = Snap();
  NonzeroNNInto(*snap, q, out);
}

void DynamicEngine::NonzeroNNInto(const Snapshot& snap, Point2 q,
                                  std::vector<Id>* out) const {
  AnswerCache* cache = snap.answers.get();
  AnswerCache::Key key{AnswerCache::Kind::kNonzeroNN, q, 0.0};
  if (cache != nullptr && cache->LookupIds(key, out)) return;
  MergedNonzeroNNInto(snap, q, out);
  if (cache != nullptr) cache->InsertIds(key, *out);
}

std::vector<Quantification> DynamicEngine::Quantify(Point2 q,
                                                    std::optional<double> eps_opt) const {
  auto snap = Snap();
  return Quantify(*snap, q, eps_opt);
}

std::vector<Quantification> DynamicEngine::Quantify(const Snapshot& snap, Point2 q,
                                                    std::optional<double> eps_opt) const {
  std::vector<Quantification> out;
  QuantifyInto(snap, q, eps_opt, &out);
  return out;
}

void DynamicEngine::QuantifyInto(Point2 q, std::optional<double> eps_opt,
                                 std::vector<Quantification>* out) const {
  auto snap = Snap();
  QuantifyInto(*snap, q, eps_opt, out);
}

void DynamicEngine::QuantifyInto(const Snapshot& snap, Point2 q,
                                 std::optional<double> eps_opt,
                                 std::vector<Quantification>* out) const {
  double eps = ResolveEps(eps_opt);
  out->clear();
  if (snap.live_count == 0) return;
  // The snapshot is immutable and the evaluation below is a deterministic
  // function of (snapshot, q, eps), so a memoized answer is exact — a hit
  // skips plan selection, MC rounds, and the merge entirely.
  AnswerCache* cache = snap.answers.get();
  AnswerCache::Key key{AnswerCache::Kind::kQuantify, q, eps};
  if (cache != nullptr && cache->LookupQuants(key, out)) return;
  if (PlanFor(snap, eps) == QuantifyPlan::kSpiral) {
    MergedSpiralQuantifyInto(snap, q, eps, out);
  } else {
    MergedMonteCarloQuantifyInto(snap, q, RoundsFor(snap, eps), options_.engine.seed,
                                 options_.pool, out);
  }
  if (cache != nullptr) cache->InsertQuants(key, *out);
}

std::vector<Quantification> DynamicEngine::QuantifyExact(Point2 q) const {
  auto snap = Snap();
  return QuantifyExact(*snap, q);
}

std::vector<Quantification> DynamicEngine::QuantifyExact(const Snapshot& snap,
                                                         Point2 q) const {
  if (snap.live_count == 0) return {};
  AnswerCache* cache = snap.answers.get();
  AnswerCache::Key key{AnswerCache::Kind::kQuantifyExact, q, 0.0};
  std::vector<Quantification> cached;
  if (cache != nullptr && cache->LookupQuants(key, &cached)) return cached;
  if (snap.all_discrete()) {
    std::vector<Quantification> out = MergedQuantifyExact(snap, q);
    if (cache != nullptr) cache->InsertQuants(key, out);
    return out;
  }
  PNN_CHECK_MSG(snap.all_continuous(),
                "QuantifyExact supports all-discrete or all-continuous inputs");
  // Gather from the snapshot, not the mutable live set: a concurrent
  // insert must not leak into (or invalidate the all-continuous check of)
  // this query's view.
  std::vector<Id> ids;
  UncertainSet live = SnapshotLiveSet(snap, &ids);
  std::vector<Quantification> out = QuantifyNumericContinuous(live, q, 1e-8);
  for (auto& e : out) e.index = ids[e.index];
  if (cache != nullptr) cache->InsertQuants(key, out);
  return out;
}

std::vector<Quantification> DynamicEngine::ThresholdNN(
    Point2 q, double tau, std::optional<double> eps) const {
  auto snap = Snap();
  return ThresholdNN(*snap, q, tau, eps);
}

std::vector<Quantification> DynamicEngine::ThresholdNN(
    const Snapshot& snap, Point2 q, double tau, std::optional<double> eps) const {
  PNN_CHECK_MSG(tau >= 0 && tau <= 1,
                "ThresholdNN tau must be a probability in [0,1]");
  return ThresholdFilter(Quantify(snap, q, eps), tau);
}

Id DynamicEngine::MostLikelyNN(Point2 q, std::optional<double> eps) const {
  return pnn::MostLikelyNN(Quantify(q, eps));
}

Id DynamicEngine::MostLikelyNN(const Snapshot& snap, Point2 q,
                               std::optional<double> eps) const {
  return pnn::MostLikelyNN(Quantify(snap, q, eps));
}

size_t DynamicEngine::live_size() const { return Snap()->live_count; }

size_t DynamicEngine::num_buckets() const { return Snap()->buckets.size(); }

namespace {
size_t CountDead(const std::shared_ptr<const std::vector<char>>& mask) {
  size_t dead = 0;
  if (mask != nullptr) {
    for (char d : *mask) dead += d != 0;
  }
  return dead;
}
}  // namespace

size_t DynamicEngine::tail_size() const {
  auto snap = Snap();
  return snap->tail->size() - CountDead(snap->tail_dead);
}

size_t DynamicEngine::dead_size() const {
  auto snap = Snap();
  size_t dead = CountDead(snap->tail_dead);
  for (const auto& bref : snap->buckets) {
    dead += bref.bucket->size() - bref.live_count;
  }
  return dead;
}

UncertainSet DynamicEngine::LiveSet(std::vector<Id>* ids) const {
  std::lock_guard<std::mutex> lock(mu_);
  UncertainSet out;
  out.reserve(live_.size());
  if (ids != nullptr) {
    ids->clear();
    ids->reserve(live_.size());
  }
  for (const auto& [id, p] : live_) {
    out.push_back(p);
    if (ids != nullptr) ids->push_back(id);
  }
  return out;
}

Engine::Options DynamicEngine::ReferenceEngineOptions() const {
  std::lock_guard<std::mutex> lock(mu_);
  Engine::Options o = options_.engine;
  o.mc_stream_ids.reserve(live_.size());
  for (const auto& [id, p] : live_) {
    o.mc_stream_ids.push_back(static_cast<uint64_t>(id));
  }
  return o;
}

}  // namespace dyn
}  // namespace pnn
