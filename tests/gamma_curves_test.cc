// Tests for the polar hyperbola branches and the gamma_i curves of
// Lemma 2.2: points on gamma_ij satisfy the distance-difference equation,
// points on gamma_i satisfy delta_i = Delta, and the breakpoint count obeys
// the 2n bound.

#include "src/core/gamma/gamma_curves.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/gamma/polar_hyperbola.h"
#include "src/util/rng.h"

namespace pnn {
namespace {

std::vector<Circle> RandomDisks(int n, Rng* rng, double span = 50, double rmin = 0.5,
                                double rmax = 4.0) {
  std::vector<Circle> out(n);
  for (auto& d : out) {
    d.center = {rng->Uniform(-span, span), rng->Uniform(-span, span)};
    d.radius = rng->Uniform(rmin, rmax);
  }
  return out;
}

TEST(PolarBranch, PointsSatisfyDistanceEquation) {
  Rng rng(201);
  for (int t = 0; t < 200; ++t) {
    Point2 f1{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    Point2 f2{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    double a = rng.Uniform(0.0, 0.4 * Distance(f1, f2));
    auto b = PolarBranch::Make(f1, f2, a);
    if (!b) continue;
    for (int s = 0; s < 20; ++s) {
      double psi = rng.Uniform(-0.95, 0.95) * b->half_width;
      Point2 p = b->PointAt(psi);
      EXPECT_NEAR(Distance(p, f1) - Distance(p, f2), 2 * a, 1e-8 * (1 + Norm(p)));
      EXPECT_TRUE(b->OnBranchSide(p));
      // PsiOf inverts PointAt.
      EXPECT_NEAR(b->PsiOf(p), psi, 1e-9);
      // Implicit conic vanishes on the branch.
      double c[6];
      b->ImplicitConic(c);
      double v = c[0] * p.x * p.x + c[1] * p.x * p.y + c[2] * p.y * p.y + c[3] * p.x +
                 c[4] * p.y + c[5];
      double scale = std::abs(c[0]) + std::abs(c[2]) + std::abs(c[5]) + 1;
      EXPECT_NEAR(v / (scale * (1 + SquaredNorm(p))), 0.0, 1e-9);
    }
  }
}

TEST(PolarBranch, RejectsOverlappingDisks) {
  EXPECT_FALSE(PolarBranch::Make({0, 0}, {1, 0}, 0.6).has_value());  // 2a > 2c.
  EXPECT_FALSE(PolarBranch::Make({0, 0}, {1, 0}, 0.5).has_value());  // Touching.
  EXPECT_TRUE(PolarBranch::Make({0, 0}, {1, 0}, 0.49).has_value());
}

TEST(PolarBranch, DegenerateBisector) {
  // a = 0: the branch is the perpendicular bisector.
  auto b = PolarBranch::Make({0, 0}, {4, 0}, 0.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_NEAR(b->half_width, M_PI / 2, 1e-12);
  Point2 p = b->PointAt(0.7);
  EXPECT_NEAR(p.x, 2.0, 1e-9);  // On the bisector x = 2.
}

TEST(PolarBranch, TangentMatchesFiniteDifference) {
  auto b = PolarBranch::Make({-1, 2}, {5, -1}, 1.2);
  ASSERT_TRUE(b.has_value());
  for (double psi : {-0.8, -0.2, 0.0, 0.4, 0.9}) {
    if (std::abs(psi) >= b->half_width) continue;
    double h = 1e-6;
    Vec2 fd = (b->PointAt(psi + h) - b->PointAt(psi - h)) / (2 * h);
    Vec2 an = b->TangentAt(psi);
    EXPECT_NEAR(fd.x, an.x, 1e-5 * (1 + std::abs(an.x)));
    EXPECT_NEAR(fd.y, an.y, 1e-5 * (1 + std::abs(an.y)));
  }
}

TEST(PolarBranch, PsiAtRhoInverts) {
  auto b = PolarBranch::Make({0, 0}, {10, 0}, 2.0);
  ASSERT_TRUE(b.has_value());
  for (double cap : {10.0, 50.0, 1000.0}) {
    double psi = b->PsiAtRho(cap);
    EXPECT_NEAR(b->Rho(psi), cap, 1e-6 * cap);
  }
}

TEST(CrossingsSharedFocus, FoundAndOnBothBranches) {
  Rng rng(203);
  int found = 0;
  for (int t = 0; t < 300; ++t) {
    Point2 f1{0, 0};
    Point2 f2{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    Point2 f3{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    auto b1 = PolarBranch::Make(f1, f2, rng.Uniform(0, 0.4 * Norm(f2)));
    auto b2 = PolarBranch::Make(f1, f3, rng.Uniform(0, 0.4 * Norm(f3)));
    if (!b1 || !b2) continue;
    std::vector<double> angles;
    CrossingsSharedFocus(*b1, *b2, &angles);
    for (double theta : angles) {
      double psi1 = theta - b1->axis, psi2 = theta - b2->axis;
      while (psi1 > M_PI) psi1 -= 2 * M_PI;
      while (psi1 <= -M_PI) psi1 += 2 * M_PI;
      while (psi2 > M_PI) psi2 -= 2 * M_PI;
      while (psi2 <= -M_PI) psi2 += 2 * M_PI;
      if (std::abs(psi1) >= b1->half_width || std::abs(psi2) >= b2->half_width) continue;
      // Both in-domain: radii must agree.
      EXPECT_NEAR(b1->Rho(psi1), b2->Rho(psi2), 1e-6 * (1 + b1->Rho(psi1)));
      ++found;
    }
  }
  EXPECT_GT(found, 50);  // Sanity: the test exercised real crossings.
}

TEST(GammaCurves, PointsOnGammaSatisfyDeltaEqualsBigDelta) {
  Rng rng(207);
  for (int trial = 0; trial < 10; ++trial) {
    auto disks = RandomDisks(12, &rng);
    auto curves = BuildGammaCurves(disks);
    ASSERT_EQ(curves.size(), disks.size());
    for (const auto& curve : curves) {
      for (const auto& arc : curve.arcs) {
        for (double f : {0.15, 0.5, 0.85}) {
          double psi = arc.psi_lo + f * (arc.psi_hi - arc.psi_lo);
          if (std::abs(psi) >= arc.branch.half_width) continue;
          Point2 p = arc.branch.PointAt(psi);
          double delta_i = DeltaLower(disks[curve.owner], p);
          double big_delta = DeltaUpperEnvelope(disks, p);
          EXPECT_NEAR(delta_i, big_delta, 1e-7 * (1 + big_delta))
              << "curve " << curve.owner << " constraint " << arc.constraint;
        }
      }
    }
  }
}

TEST(GammaCurves, BreakpointBoundLemma22) {
  Rng rng(211);
  for (int trial = 0; trial < 5; ++trial) {
    int n = 30;
    auto disks = RandomDisks(n, &rng, 30);
    auto curves = BuildGammaCurves(disks);
    for (const auto& curve : curves) {
      EXPECT_LE(curve.breakpoints, 2 * n);  // Lemma 2.2.
    }
  }
}

TEST(GammaCurves, ArcEndpointsSharedExactly) {
  Rng rng(213);
  auto disks = RandomDisks(15, &rng);
  auto curves = BuildGammaCurves(disks);
  for (const auto& curve : curves) {
    size_t na = curve.arcs.size();
    for (size_t k = 0; k < na; ++k) {
      const auto& cur = curve.arcs[k];
      const auto& nxt = curve.arcs[(k + 1) % na];
      if (!cur.unbounded_hi && !nxt.unbounded_lo && na > 1) {
        EXPECT_EQ(cur.p_hi.x, nxt.p_lo.x);
        EXPECT_EQ(cur.p_hi.y, nxt.p_lo.y);
      }
    }
  }
}

TEST(GammaCurves, OverlappingDisksYieldEmptyCurves) {
  // All disks overlap pairwise: every point is always a possible NN and
  // every gamma_i is empty.
  std::vector<Circle> disks = {{{0, 0}, 3}, {{1, 0}, 3}, {{0, 1}, 3}};
  auto curves = BuildGammaCurves(disks);
  for (const auto& c : curves) EXPECT_TRUE(c.Empty());
}

TEST(GammaCurves, TwoDistantDisksSingleArcEach) {
  std::vector<Circle> disks = {{{-10, 0}, 1}, {{10, 0}, 1}};
  auto curves = BuildGammaCurves(disks);
  ASSERT_EQ(curves[0].arcs.size(), 1u);
  ASSERT_EQ(curves[1].arcs.size(), 1u);
  EXPECT_EQ(curves[0].breakpoints, 0);
  // gamma_0 separates the plane near the bisector shifted toward disk 1.
  const auto& arc = curves[0].arcs[0];
  Point2 p = arc.branch.PointAt(0.0);
  EXPECT_NEAR(Distance(p, disks[0].center) - 1.0,
              Distance(p, disks[1].center) + 1.0, 1e-9);
  EXPECT_TRUE(arc.unbounded_lo);
  EXPECT_TRUE(arc.unbounded_hi);
}

}  // namespace
}  // namespace pnn
