// pnn::serve::StoreServer — open-from-dir serving: recovers (or
// initializes) a durable store at a directory and serves it over the RPC
// protocol. This is the production startup path: a process restart is
// Open() + Start(), and every Insert/Erase acked over the wire was
// fsync'd to the store's op log first (store::Store's write-ahead
// contract), so the served live set survives the next crash.

#ifndef PNN_SERVE_STORE_SERVER_H_
#define PNN_SERVE_STORE_SERVER_H_

#include <memory>
#include <string>

#include "src/serve/server.h"
#include "src/store/sharded_store.h"
#include "src/store/store.h"

namespace pnn {
namespace serve {

class StoreServer {
 public:
  struct Options {
    /// 0 = one durable DynamicEngine (store::Store). >= 1 = a durable
    /// shard router with this many shards (store::ShardedStore; the
    /// value overrides sharded.sharded.num_shards).
    uint32_t num_shards = 0;
    store::Store::Options store;           // Used when num_shards == 0.
    store::ShardedStore::Options sharded;  // Used when num_shards >= 1.
    ServerOptions server;
  };

  /// Recovers or initializes the store, then builds the server over it
  /// (not yet started). Aborts on disk corruption, like store::Open.
  static std::unique_ptr<StoreServer> Open(const std::string& dir,
                                           Options options);

  ~StoreServer();

  bool Start() { return server_->Start(); }
  void Stop() { server_->Stop(); }
  uint16_t port() const { return server_->port(); }

  Server& server() { return *server_; }
  /// The backing store (null for the mode not in use).
  store::Store* store() { return store_.get(); }
  store::ShardedStore* sharded_store() { return sharded_store_.get(); }

 private:
  StoreServer() = default;

  std::unique_ptr<store::Store> store_;
  std::unique_ptr<store::ShardedStore> sharded_store_;
  /// Declared last: the server stops before the store it reads closes.
  std::unique_ptr<Server> server_;
};

}  // namespace serve
}  // namespace pnn

#endif  // PNN_SERVE_STORE_SERVER_H_
