// End-to-end tests for pnn::serve::Server over loopback TCP: smoke RPCs
// on every query kind (answers bit-identical to direct engine calls),
// pipelining, protocol-error handling (malformed / oversized frames,
// partial writes, disconnect mid-request), already-expired deadlines, and
// admission-control shedding. The suite runs under ASan and TSan in CI —
// the server must never crash or leak, whatever the client does.

#include "src/serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/api/engine_ref.h"
#include "src/api/query.h"
#include "src/serve/client.h"
#include "src/serve/protocol.h"
#include "src/shard/sharded_engine.h"
#include "src/workload/generators.h"

namespace pnn {
namespace serve {
namespace {

// A small sharded backend with deterministic contents.
std::unique_ptr<shard::ShardedEngine> MakeBackend(int points = 40) {
  shard::Options sopt;
  sopt.num_shards = 2;
  sopt.shard.engine.seed = 77;
  sopt.shard.engine.mc_rounds_override = 48;
  auto engine = std::make_unique<shard::ShardedEngine>(sopt);
  Rng rng(901);
  auto locs = RandomDiscreteLocations(points, 3, 25, 4, &rng);
  for (const auto& l : locs) {
    std::vector<double> w(l.size(), 1.0 / static_cast<double>(l.size()));
    engine->Insert(UncertainPoint::Discrete(l, w));
  }
  return engine;
}

// Raw loopback socket for protocol-abuse tests (Client is too polite).
class RawConn {
 public:
  bool Connect(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~RawConn() { Close(); }
  void Close() {
    if (fd_ >= 0) close(fd_);
    fd_ = -1;
  }
  bool SendAll(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t w = write(fd_, bytes.data() + sent, bytes.size() - sent);
      if (w <= 0) return false;
      sent += static_cast<size_t>(w);
    }
    return true;
  }
  /// Reads until one full frame is buffered or the peer closes; true with
  /// the payload on success, false on EOF.
  bool ReadFrame(std::string* payload) {
    char buf[4096];
    for (;;) {
      if (rx_.Next(payload) == FrameBuffer::Result::kFrame) return true;
      ssize_t r = read(fd_, buf, sizeof(buf));
      if (r <= 0) return false;
      rx_.Append(buf, static_cast<size_t>(r));
    }
  }
  /// True when the peer closes the connection (EOF) within the socket's
  /// lifetime; drains any pending responses first.
  bool ReadUntilEof() {
    char buf[4096];
    for (;;) {
      ssize_t r = read(fd_, buf, sizeof(buf));
      if (r == 0) return true;
      if (r < 0) return false;
    }
  }

 private:
  int fd_ = -1;
  FrameBuffer rx_;
};

TEST(ServeServer, SmokeAllKindsMatchDirectCalls) {
  auto backend = MakeBackend();
  Server server(api::EngineRef(backend.get()));
  ASSERT_TRUE(server.Start());
  Client client;
  ASSERT_TRUE(client.Connect(server.port()));

  Rng rng(902);
  for (int i = 0; i < 20; ++i) {
    Point2 q{rng.Uniform(-30, 30), rng.Uniform(-30, 30)};

    auto nn = client.Call(api::QueryRequest::NonzeroNN(q));
    ASSERT_TRUE(nn && nn->ok());
    EXPECT_EQ(nn->ids, backend->NonzeroNN(q));

    auto quant = client.Call(api::QueryRequest::Quantify(q, 0.1));
    ASSERT_TRUE(quant && quant->ok());
    auto want = backend->Quantify(q, 0.1);
    ASSERT_EQ(quant->quants.size(), want.size());
    for (size_t k = 0; k < want.size(); ++k) {
      EXPECT_EQ(quant->quants[k].index, want[k].index);
      EXPECT_EQ(quant->quants[k].probability, want[k].probability);
    }

    auto ml = client.Call(api::QueryRequest::MostLikelyNN(q, 0.1));
    ASSERT_TRUE(ml && ml->ok());
    EXPECT_EQ(ml->id, backend->MostLikelyNN(q, 0.1));
    EXPECT_GE(ml->server_micros, 0.0);
  }

  // Updates through the wire mutate the backend.
  auto ins = client.Call(api::QueryRequest::Insert(
      UncertainPoint::Discrete({{0, 0}, {1, 1}}, {0.5, 0.5})));
  ASSERT_TRUE(ins && ins->ok());
  EXPECT_GE(ins->id, 0);
  auto del = client.Call(api::QueryRequest::Erase(ins->id));
  ASSERT_TRUE(del && del->ok());
  EXPECT_EQ(del->id, ins->id);

  ServerStats stats = server.stats();
  EXPECT_GT(stats.requests_received, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.shed_overloaded, 0u);
  server.Stop();
}

TEST(ServeServer, InvalidRequestGetsStatusNotAbort) {
  auto backend = MakeBackend(10);
  Server server(api::EngineRef(backend.get()));
  ASSERT_TRUE(server.Start());
  Client client;
  ASSERT_TRUE(client.Connect(server.port()));
  auto resp = client.Call(api::QueryRequest::Quantify({0, 0}, 2.0));
  ASSERT_TRUE(resp);
  EXPECT_EQ(resp->status, api::StatusCode::kInvalidArgument);
  // The connection stays usable after an application-level error.
  auto ok = client.Call(api::QueryRequest::NonzeroNN({0, 0}));
  ASSERT_TRUE(ok);
  EXPECT_TRUE(ok->ok());
}

TEST(ServeServer, PipeliningMatchesByRequestId) {
  auto backend = MakeBackend();
  Server server(api::EngineRef(backend.get()));
  ASSERT_TRUE(server.Start());
  Client client;
  ASSERT_TRUE(client.Connect(server.port()));

  const int kInFlight = 64;
  std::vector<uint64_t> ids;
  Rng rng(903);
  for (int i = 0; i < kInFlight; ++i) {
    auto id = client.Send(api::QueryRequest::NonzeroNN(
        {rng.Uniform(-30, 30), rng.Uniform(-30, 30)}));
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  std::vector<uint64_t> got;
  for (int i = 0; i < kInFlight; ++i) {
    auto frame = client.Receive();
    ASSERT_TRUE(frame.has_value());
    EXPECT_TRUE(frame->response.ok());
    got.push_back(frame->request_id);
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, ids);  // Every request answered exactly once.
  // Concurrent requests should coalesce into fewer backend dispatches.
  EXPECT_GE(server.stats().coalescing_factor(), 1.0);
}

TEST(ServeServer, MalformedFrameAnsweredThenClosed) {
  auto backend = MakeBackend(10);
  Server server(api::EngineRef(backend.get()));
  ASSERT_TRUE(server.Start());
  RawConn conn;
  ASSERT_TRUE(conn.Connect(server.port()));

  // A syntactically framed but semantically garbage payload (bad kind).
  std::string frame;
  AppendRequestFrame(123, api::QueryRequest::NonzeroNN({0, 0}), &frame);
  frame[kFramePrefixBytes + 14] = 99;  // Corrupt the kind byte.
  ASSERT_TRUE(conn.SendAll(frame));

  std::string payload;
  ASSERT_TRUE(conn.ReadFrame(&payload));
  ResponseFrame resp;
  ASSERT_TRUE(DecodeResponsePayload(payload.data(), payload.size(), &resp));
  EXPECT_EQ(resp.request_id, 123u);  // PeekRequestId still addressed it.
  EXPECT_EQ(resp.response.status, api::StatusCode::kInvalidArgument);
  EXPECT_TRUE(conn.ReadUntilEof());  // Server closes after the error.
  EXPECT_GE(server.stats().protocol_errors, 1u);
}

TEST(ServeServer, OversizedFrameClosedCleanly) {
  auto backend = MakeBackend(10);
  ServerOptions opts;
  opts.max_frame_bytes = 256;
  Server server(api::EngineRef(backend.get()), opts);
  ASSERT_TRUE(server.Start());
  RawConn conn;
  ASSERT_TRUE(conn.Connect(server.port()));
  uint32_t huge = 1u << 20;
  std::string prefix(4, '\0');
  std::memcpy(prefix.data(), &huge, 4);
  ASSERT_TRUE(conn.SendAll(prefix));
  std::string payload;
  // One error response (addressed to id 0), then EOF.
  ASSERT_TRUE(conn.ReadFrame(&payload));
  ResponseFrame resp;
  ASSERT_TRUE(DecodeResponsePayload(payload.data(), payload.size(), &resp));
  EXPECT_EQ(resp.response.status, api::StatusCode::kInvalidArgument);
  EXPECT_TRUE(conn.ReadUntilEof());
}

TEST(ServeServer, PartialFrameThenCompletionIsAnswered) {
  auto backend = MakeBackend(10);
  Server server(api::EngineRef(backend.get()));
  ASSERT_TRUE(server.Start());
  RawConn conn;
  ASSERT_TRUE(conn.Connect(server.port()));

  std::string frame;
  AppendRequestFrame(5, api::QueryRequest::NonzeroNN({1, 1}), &frame);
  // Trickle the frame in three chunks with pauses: the server must wait
  // for completion, not treat the partial buffer as malformed.
  size_t third = frame.size() / 3;
  ASSERT_TRUE(conn.SendAll(frame.substr(0, third)));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(conn.SendAll(frame.substr(third, third)));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(conn.SendAll(frame.substr(2 * third)));

  std::string payload;
  ASSERT_TRUE(conn.ReadFrame(&payload));
  ResponseFrame resp;
  ASSERT_TRUE(DecodeResponsePayload(payload.data(), payload.size(), &resp));
  EXPECT_EQ(resp.request_id, 5u);
  EXPECT_TRUE(resp.response.ok());
}

TEST(ServeServer, DisconnectMidRequestDoesNotCrash) {
  auto backend = MakeBackend();
  Server server(api::EngineRef(backend.get()));
  ASSERT_TRUE(server.Start());

  // Half a frame, then vanish.
  {
    RawConn conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    std::string frame;
    AppendRequestFrame(1, api::QueryRequest::Quantify({0, 0}, 0.1), &frame);
    ASSERT_TRUE(conn.SendAll(frame.substr(0, frame.size() / 2)));
  }
  // Full frames, then vanish before reading responses: the queued work
  // completes and its responses are dropped at completion drain.
  {
    RawConn conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    std::string frames;
    for (int i = 0; i < 8; ++i) {
      AppendRequestFrame(static_cast<uint64_t>(i),
                         api::QueryRequest::Quantify({0, 0}, 0.1), &frames);
    }
    ASSERT_TRUE(conn.SendAll(frames));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // The server is still healthy for a fresh client.
  Client client;
  ASSERT_TRUE(client.Connect(server.port()));
  auto resp = client.Call(api::QueryRequest::NonzeroNN({0, 0}));
  ASSERT_TRUE(resp);
  EXPECT_TRUE(resp->ok());
  server.Stop();
}

TEST(ServeServer, ExpiredDeadlineAnsweredNotDropped) {
  auto backend = MakeBackend();
  Server server(api::EngineRef(backend.get()));
  ASSERT_TRUE(server.Start());
  Client client;
  ASSERT_TRUE(client.Connect(server.port()));

  api::QueryRequest req = api::QueryRequest::Quantify({0, 0}, 0.1);
  req.deadline_micros = 1;  // Expires essentially immediately.
  int exceeded = 0;
  for (int i = 0; i < 32; ++i) {
    auto resp = client.Call(req);
    ASSERT_TRUE(resp.has_value());  // ALWAYS answered, never dropped.
    if (resp->status == api::StatusCode::kDeadlineExceeded) ++exceeded;
  }
  // With a 1us budget, at least some (in practice all) must expire
  // between receipt and dispatch.
  EXPECT_GT(exceeded, 0);
  EXPECT_EQ(server.stats().deadline_exceeded, static_cast<uint64_t>(exceeded));
  server.Stop();
}

TEST(ServeServer, OverloadShedsWithExplicitStatus) {
  auto backend = MakeBackend();
  ServerOptions opts;
  opts.queue_limit = 4;  // Tiny admission bound.
  opts.batch_max = 2;
  Server server(api::EngineRef(backend.get()), opts);
  ASSERT_TRUE(server.Start());
  Client client;
  ASSERT_TRUE(client.Connect(server.port()));

  // Blast expensive requests open-loop; with a queue of 4 most must shed.
  const int kBurst = 256;
  Rng rng(904);
  int sent = 0;
  for (int i = 0; i < kBurst; ++i) {
    auto id = client.Send(api::QueryRequest::Quantify(
        {rng.Uniform(-30, 30), rng.Uniform(-30, 30)}, 0.05));
    if (!id) break;
    ++sent;
  }
  int ok = 0, shed = 0, other = 0;
  for (int i = 0; i < sent; ++i) {
    auto frame = client.Receive();
    ASSERT_TRUE(frame.has_value()) << "response " << i << " of " << sent;
    if (frame->response.status == api::StatusCode::kOk) {
      ++ok;
    } else if (frame->response.status == api::StatusCode::kOverloaded) {
      ++shed;
    } else {
      ++other;
    }
  }
  // Every request answered: admitted ones with kOk, the overflow with
  // kOverloaded, nothing lost or crashed.
  EXPECT_EQ(ok + shed + other, sent);
  EXPECT_GT(shed, 0);
  EXPECT_EQ(other, 0);
  EXPECT_EQ(server.stats().shed_overloaded, static_cast<uint64_t>(shed));
  server.Stop();
}

TEST(ServeServer, StopIsGracefulAndIdempotent) {
  auto backend = MakeBackend(10);
  Server server(api::EngineRef(backend.get()));
  ASSERT_TRUE(server.Start());
  Client client;
  ASSERT_TRUE(client.Connect(server.port()));
  // Queue work, then stop: everything admitted is answered before close.
  std::vector<uint64_t> ids;
  for (int i = 0; i < 16; ++i) {
    auto id = client.Send(api::QueryRequest::Quantify({0, 0}, 0.1));
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  // Wait until the server has decoded every frame (they may still sit in
  // the socket buffer right after Send returns), then stop concurrently
  // with receiving: all admitted work must be answered before close.
  while (server.stats().requests_received < ids.size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread stopper([&] { server.Stop(); });
  size_t answered = 0;
  while (answered < ids.size()) {
    auto frame = client.Receive();
    if (!frame) break;  // EOF after the flush is legal.
    ++answered;
  }
  stopper.join();
  EXPECT_EQ(answered, ids.size());
  server.Stop();  // Idempotent.
  EXPECT_FALSE(server.running());
}

TEST(ServeServer, ManyConnectionsConcurrently) {
  auto backend = MakeBackend();
  Server server(api::EngineRef(backend.get()));
  ASSERT_TRUE(server.Start());
  const int kClients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.Connect(server.port())) {
        failures.fetch_add(1);
        return;
      }
      Rng rng(1000 + static_cast<uint64_t>(c));
      for (int i = 0; i < 25; ++i) {
        auto resp = client.Call(api::QueryRequest::NonzeroNN(
            {rng.Uniform(-30, 30), rng.Uniform(-30, 30)}));
        if (!resp || !resp->ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.stats().connections_accepted, static_cast<uint64_t>(kClients));
  server.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace pnn
