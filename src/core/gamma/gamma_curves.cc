#include "src/core/gamma/gamma_curves.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "src/geometry/solvers.h"
#include "src/util/check.h"

namespace pnn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Newton-polishes a point to satisfy both branch equations exactly:
// d(x, f1) - d(x, f2_k) = 2 a_k for k in {1, 2}.
Point2 PolishBreakpoint(const PolarBranch& b1, const PolarBranch& b2, Point2 seed) {
  auto f = [&](Point2 p) -> Vec2 {
    return {Distance(p, b1.f1) - Distance(p, b1.f2) - 2 * b1.a,
            Distance(p, b2.f1) - Distance(p, b2.f2) - 2 * b2.a};
  };
  Point2 p = seed;
  double scale = 1.0 + Norm(seed - b1.f1);
  if (!Newton2D(f, &p, 1e-13 * scale)) return seed;  // Keep the seed if stuck.
  return p;
}

}  // namespace

std::vector<GammaCurve> BuildGammaCurves(const std::vector<Circle>& disks) {
  int n = static_cast<int>(disks.size());
  std::vector<GammaCurve> out(n);
  for (int i = 0; i < n; ++i) {
    GammaCurve& curve = out[i];
    curve.owner = i;

    // Branches gamma_ij for all separated j.
    std::map<int, PolarBranch> branches;
    std::vector<int> ids;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      auto b = PolarBranch::Make(disks[i].center, disks[j].center,
                                 (disks[i].radius + disks[j].radius) / 2.0);
      if (b.has_value()) {
        branches.emplace(j, *b);
        ids.push_back(j);
      }
    }
    if (ids.empty()) {
      curve.envelope = {{0.0, kNoCurve}};
      continue;  // gamma_i empty: P_i is everywhere a possible NN.
    }

    CircularCurveFamily family;
    family.eval = [&](int c, double theta) {
      const PolarBranch& b = branches.at(c);
      double psi = theta - b.axis;
      while (psi > M_PI) psi -= 2 * M_PI;
      while (psi <= -M_PI) psi += 2 * M_PI;
      if (std::abs(psi) >= b.half_width) return kInf;
      return b.Rho(psi);
    };
    family.domain = [&](int c) {
      const PolarBranch& b = branches.at(c);
      return std::make_pair(b.axis - b.half_width, b.axis + b.half_width);
    };
    family.crossings = [&](int c1, int c2, std::vector<double>* angles) {
      CrossingsSharedFocus(branches.at(c1), branches.at(c2), angles);
    };

    curve.envelope = LowerEnvelopeCircular(ids, family);

    // Convert envelope arcs into GammaArcs with polished endpoints.
    const auto& env = curve.envelope;
    size_t m = env.size();
    if (m == 1 && env[0].curve == kNoCurve) continue;
    for (size_t k = 0; k < m; ++k) {
      if (env[k].curve == kNoCurve) continue;
      const EnvelopeArc& arc = env[k];
      const EnvelopeArc& next = env[(k + 1) % m];
      const EnvelopeArc& prev = env[(k + m - 1) % m];
      const PolarBranch& b = branches.at(arc.curve);

      GammaArc ga;
      ga.owner = i;
      ga.constraint = arc.curve;
      ga.branch = b;

      double theta_lo = arc.start;
      double theta_hi = next.start;
      // Envelope arcs are circular; interpret hi > lo.
      if (m == 1) theta_hi = theta_lo + 2 * M_PI;  // Single full-circle arc.

      ga.unbounded_lo = (prev.curve == kNoCurve) || m == 1;
      ga.unbounded_hi = (next.curve == kNoCurve) || m == 1;

      // Parameters relative to the branch axis.
      auto to_psi = [&](double theta) {
        double psi = theta - b.axis;
        while (psi > M_PI) psi -= 2 * M_PI;
        while (psi <= -M_PI) psi += 2 * M_PI;
        return psi;
      };
      ga.psi_lo = ga.unbounded_lo ? -b.half_width : to_psi(theta_lo);
      ga.psi_hi = ga.unbounded_hi ? b.half_width : to_psi(theta_hi);

      if (!ga.unbounded_lo) {
        const PolarBranch& pb = branches.at(prev.curve);
        Point2 seed = b.PointAt(ga.psi_lo);
        ga.p_lo = PolishBreakpoint(b, pb, seed);
        ga.psi_lo = b.PsiOf(ga.p_lo);
        ++curve.breakpoints;
      }
      if (!ga.unbounded_hi) {
        const PolarBranch& nb = branches.at(next.curve);
        Point2 seed = b.PointAt(ga.psi_hi);
        ga.p_hi = PolishBreakpoint(b, nb, seed);
        ga.psi_hi = b.PsiOf(ga.p_hi);
      }
      PNN_CHECK_MSG(ga.psi_lo < ga.psi_hi + 1e-12, "inverted gamma arc range");
      curve.arcs.push_back(ga);
    }

    // Adjacent arcs must share endpoint coordinates exactly: copy the
    // polished hi endpoint of each arc onto the lo endpoint of the next
    // bounded neighbor (they were polished from the same pair of branches,
    // but Newton may differ in the last ulp; exact sharing keeps the
    // arrangement's vertex merging trivial).
    auto& arcs = curve.arcs;
    size_t na = arcs.size();
    for (size_t k = 0; k < na; ++k) {
      GammaArc& cur = arcs[k];
      GammaArc& nxt = arcs[(k + 1) % na];
      if (!cur.unbounded_hi && !nxt.unbounded_lo) {
        nxt.p_lo = cur.p_hi;
        nxt.psi_lo = nxt.branch.PsiOf(nxt.p_lo);
      }
    }
  }
  return out;
}

double DeltaUpperEnvelope(const std::vector<Circle>& disks, Point2 q) {
  double best = kInf;
  for (const auto& d : disks) best = std::min(best, Distance(q, d.center) + d.radius);
  return best;
}

double DeltaLower(const Circle& disk, Point2 q) {
  return std::max(0.0, Distance(q, disk.center) - disk.radius);
}

}  // namespace pnn
