// Regression / stress tests at scales the unit suites do not reach.
//
// The clustered n >= 85 configurations below originally exposed a missed
// close-pair conic-conic intersection (two crossings between adjacent scan
// samples, no sign change) that corrupted the arrangement topology; the
// local-minimum refinement in ConicConic now recovers such pairs. Keep
// these exact seeds as regressions.

#include <gtest/gtest.h>

#include "src/core/v0/nonzero_voronoi.h"
#include "src/uncertain/uncertain_point.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace pnn {
namespace {

class ClusteredStress : public ::testing::TestWithParam<std::pair<uint64_t, int>> {};

TEST_P(ClusteredStress, EulerAndLabelsHold) {
  auto [seed, n] = GetParam();
  Rng rng(seed);
  auto disks = ClusteredDisks(n, 3, 40, 1.5, &rng);
  NonzeroVoronoi v0(disks);
  EXPECT_TRUE(v0.arrangement().EulerCheck());
  EXPECT_TRUE(v0.Validate());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusteredStress,
                         ::testing::Values(std::make_pair(73ull, 85),   // Regression.
                                           std::make_pair(73ull, 100),  // Regression.
                                           std::make_pair(74ull, 90),
                                           std::make_pair(75ull, 90),
                                           std::make_pair(99ull, 120)));

TEST(DenseRandomStress, LargerInstanceStaysConsistent) {
  Rng rng(1501);
  auto disks = RandomDisks(120, 22, 0.5, 3.0, &rng);
  NonzeroVoronoi v0(disks);
  EXPECT_TRUE(v0.arrangement().EulerCheck());
  EXPECT_TRUE(v0.Validate());
  // Spot queries against the scan.
  UncertainSet upts;
  for (const auto& d : disks) {
    upts.push_back(UncertainPoint::UniformDisk(d.center, d.radius));
  }
  int agree = 0;
  for (int t = 0; t < 200; ++t) {
    Point2 q{rng.Uniform(-25, 25), rng.Uniform(-25, 25)};
    if (v0.Query(q) == NonzeroNNBruteForce(upts, q)) ++agree;
  }
  EXPECT_GE(agree, 196);  // Allow a few boundary-grazing queries.
}

TEST(DiscreteStress, ManyPointsManyLocations) {
  Rng rng(1503);
  auto locs = RandomDiscreteLocations(40, 4, 25, 5, &rng);
  NonzeroVoronoiDiscrete v0(locs);
  EXPECT_TRUE(v0.arrangement().EulerCheck());
  EXPECT_TRUE(v0.Validate());
}

}  // namespace
}  // namespace pnn
