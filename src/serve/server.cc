#include "src/serve/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

namespace pnn {
namespace serve {

namespace {

constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;

}  // namespace

Server::Server(api::EngineRef ref, ServerOptions options)
    : ref_(ref), options_(options) {
  if (options_.queue_limit == 0) options_.queue_limit = 1;
  if (options_.batch_max == 0) options_.batch_max = 1;
  batch_ = std::make_unique<exec::BatchEngine>(ref_, options_.batch);
}

Server::~Server() { Stop(); }

bool Server::Start() {
  if (running_ || !ref_.valid()) return false;
  stopping_ = false;

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return false;
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  bool ok = bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0 &&
            listen(listen_fd_, options_.listen_backlog) == 0;
  socklen_t len = sizeof(addr);
  ok = ok && getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0;
  if (ok) port_ = ntohs(addr.sin_port);

  epoll_fd_ = ok ? epoll_create1(EPOLL_CLOEXEC) : -1;
  wake_fd_ = epoll_fd_ >= 0 ? eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) : -1;
  if (wake_fd_ < 0) {
    if (epoll_fd_ >= 0) close(epoll_fd_);
    close(listen_fd_);
    listen_fd_ = epoll_fd_ = -1;
    return false;
  }

  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeTag;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  running_ = true;
  io_thread_ = std::thread([this] { IoLoop(); });
  worker_thread_ = std::thread([this] { WorkerLoop(); });
  return true;
}

void Server::Stop() {
  if (!running_) return;
  stopping_ = true;
  // Worker first: it drains the queue (every admitted request gets its
  // response) and exits; then the IO loop gets a bounded grace window to
  // flush outboxes before closing.
  queue_cv_.notify_all();
  if (worker_thread_.joinable()) worker_thread_.join();
  // Anything admitted after the worker's last pass (frames that were still
  // in a socket buffer when Stop began) is answered kOverloaded here, so a
  // received request is never silently dropped even across shutdown.
  {
    std::lock_guard<std::mutex> qlock(queue_mu_);
    std::lock_guard<std::mutex> clock(completion_mu_);
    for (Pending& p : queue_) {
      Completion c;
      c.conn_id = p.conn_id;
      AppendResponseFrame(
          p.request_id,
          api::QueryResponse::Error(api::StatusCode::kOverloaded, p.request.kind,
                                    "server shutting down"),
          &c.bytes);
      shed_overloaded_.fetch_add(1);
      completions_.push_back(std::move(c));
    }
    queue_.clear();
  }
  WakeIo();
  if (io_thread_.joinable()) io_thread_.join();

  conns_.clear();  // Connection fds were closed by the IO loop.
  if (listen_fd_ >= 0) close(listen_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
  if (wake_fd_ >= 0) close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
  running_ = false;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = connections_accepted_.load();
  s.requests_received = requests_received_.load();
  s.responses_ok = responses_ok_.load();
  s.responses_error = responses_error_.load();
  s.shed_overloaded = shed_overloaded_.load();
  s.deadline_exceeded = deadline_exceeded_.load();
  s.protocol_errors = protocol_errors_.load();
  s.batches_executed = batches_executed_.load();
  s.requests_executed = requests_executed_.load();
  return s;
}

void Server::WakeIo() {
  uint64_t one = 1;
  ssize_t ignored = write(wake_fd_, &one, sizeof(one));
  (void)ignored;  // A full eventfd counter still wakes the loop.
}

// ---------------------------------------------------------------------
// Worker: coalesced execution through the batch engine.
// ---------------------------------------------------------------------

void Server::WorkerLoop() {
  std::vector<Pending> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty() && stopping_) return;
      size_t take = std::min(options_.batch_max, queue_.size());
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }

    // Deadline check happens at dispatch, after the queue wait: a request
    // whose budget elapsed while queued is answered, never executed and
    // never dropped.
    Clock::time_point now = Clock::now();
    std::vector<api::QueryRequest> to_exec;
    std::vector<size_t> exec_slot(batch.size(), SIZE_MAX);
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].deadline <= now) continue;
      exec_slot[i] = to_exec.size();
      to_exec.push_back(batch[i].request);
    }

    exec::BatchResult<api::QueryResponse> executed;
    if (!to_exec.empty()) {
      executed = batch_->RequestBatch(to_exec);
      batches_executed_.fetch_add(1);
      requests_executed_.fetch_add(to_exec.size());
    }

    std::vector<Completion> done;
    done.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      api::QueryResponse response;
      if (exec_slot[i] == SIZE_MAX) {
        response = api::QueryResponse::Error(api::StatusCode::kDeadlineExceeded,
                                             batch[i].request.kind,
                                             "deadline expired before execution");
        deadline_exceeded_.fetch_add(1);
      } else {
        response = std::move(executed.values[exec_slot[i]]);
        if (response.ok()) {
          responses_ok_.fetch_add(1);
        } else {
          responses_error_.fetch_add(1);
        }
      }
      Completion c;
      c.conn_id = batch[i].conn_id;
      AppendResponseFrame(batch[i].request_id, response, &c.bytes);
      done.push_back(std::move(c));
    }
    {
      std::lock_guard<std::mutex> lock(completion_mu_);
      for (Completion& c : done) completions_.push_back(std::move(c));
    }
    WakeIo();
  }
}

// ---------------------------------------------------------------------
// IO loop: accept, read/decode/admit, write.
// ---------------------------------------------------------------------

void Server::IoLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  // Shutdown grace: after stopping_, keep flushing for up to this long.
  constexpr auto kDrainGrace = std::chrono::seconds(1);
  Clock::time_point drain_deadline{};
  bool draining = false;

  for (;;) {
    int timeout_ms = draining ? 10 : 500;
    int n = epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        if (!stopping_) AcceptReady();
        continue;
      }
      if (tag == kWakeTag) {
        uint64_t counter;
        while (read(wake_fd_, &counter, sizeof(counter)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(tag);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) ReadReady(tag);
      // Re-check: ReadReady may have closed the connection.
      if ((events[i].events & EPOLLOUT) != 0 && conns_.count(tag) != 0) {
        WriteReady(tag);
      }
    }

    DrainCompletions();

    if (stopping_) {
      if (!draining) {
        draining = true;
        drain_deadline = Clock::now() + kDrainGrace;
      }
      // Exit once every outbox is flushed (the worker has already
      // drained the queue before Stop() woke us), or the grace expires.
      bool flushed = true;
      {
        std::lock_guard<std::mutex> lock(completion_mu_);
        flushed = completions_.empty();
      }
      if (flushed) {
        for (auto& [id, conn] : conns_) {
          if (conn->tx_sent < conn->tx.size()) {
            flushed = false;
            break;
          }
        }
      }
      if (flushed || Clock::now() >= drain_deadline) break;
    }
  }

  for (auto& [id, conn] : conns_) {
    if (conn->fd >= 0) close(conn->fd);
  }
  conns_.clear();
}

void Server::AcceptReady() {
  for (;;) {
    int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: nothing more to take.
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    uint64_t conn_id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(options_.max_frame_bytes);
    conn->fd = fd;
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = conn_id;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close(fd);
      continue;
    }
    conns_.emplace(conn_id, std::move(conn));
    connections_accepted_.fetch_add(1);
  }
}

void Server::ReadReady(uint64_t conn_id) {
  Connection* conn = conns_.at(conn_id).get();
  char buf[16384];
  for (;;) {
    ssize_t r = read(conn->fd, buf, sizeof(buf));
    if (r > 0) {
      conn->rx.Append(buf, static_cast<size_t>(r));
      if (static_cast<size_t>(r) < sizeof(buf)) break;
      continue;
    }
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (r < 0 && errno == EINTR) continue;
    // EOF or hard error: a disconnect mid-request just drops the
    // connection — any queued work for it completes and its responses
    // are discarded at completion-drain time.
    CloseConnection(conn_id);
    return;
  }
  DrainFrames(conn_id, conn);
}

void Server::DrainFrames(uint64_t conn_id, Connection* conn) {
  std::string payload;
  for (;;) {
    if (conn->close_after_flush) return;  // Already poisoned; stop parsing.
    FrameBuffer::Result res = conn->rx.Next(&payload);
    if (res == FrameBuffer::Result::kNeedMore) return;
    if (res == FrameBuffer::Result::kTooLarge) {
      protocol_errors_.fetch_add(1);
      QueueResponse(conn, 0,
                    api::QueryResponse::Error(api::StatusCode::kInvalidArgument,
                                              api::QueryKind::kNonzeroNN,
                                              "frame exceeds max_frame_bytes"));
      conn->close_after_flush = true;
      FlushConnection(conn_id, conn);
      return;
    }
    RequestFrame frame;
    if (!DecodeRequestPayload(payload.data(), payload.size(), &frame)) {
      protocol_errors_.fetch_add(1);
      QueueResponse(conn, PeekRequestId(payload.data(), payload.size()),
                    api::QueryResponse::Error(api::StatusCode::kInvalidArgument,
                                              api::QueryKind::kNonzeroNN,
                                              "malformed request frame"));
      conn->close_after_flush = true;
      FlushConnection(conn_id, conn);
      return;
    }
    requests_received_.fetch_add(1);
    EnqueueOrShed(conn_id, std::move(frame));
    if (conns_.count(conn_id) == 0) return;  // Closed during enqueue flush.
  }
}

void Server::EnqueueOrShed(uint64_t conn_id, RequestFrame frame) {
  Connection* conn = conns_.at(conn_id).get();
  Pending p;
  p.conn_id = conn_id;
  p.request_id = frame.request_id;
  if (frame.request.deadline_micros > 0) {
    p.deadline =
        Clock::now() + std::chrono::microseconds(frame.request.deadline_micros);
  }
  p.request = std::move(frame.request);

  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    // During shutdown the worker may already be gone; shed instead of
    // admitting work nothing will execute.
    if (!stopping_ && queue_.size() < options_.queue_limit) {
      queue_.push_back(std::move(p));
      admitted = true;
    }
  }
  if (admitted) {
    queue_cv_.notify_one();
    return;
  }
  // Shed with an explicit status: the client learns immediately instead
  // of the queue growing without bound. Sheds bypass the worker, so this
  // response can overtake earlier admitted ones — ids disambiguate.
  shed_overloaded_.fetch_add(1);
  QueueResponse(conn, p.request_id,
                api::QueryResponse::Error(api::StatusCode::kOverloaded,
                                          p.request.kind, "pending queue full"));
  FlushConnection(conn_id, conn);
}

void Server::QueueResponse(Connection* conn, uint64_t request_id,
                           const api::QueryResponse& response) {
  AppendResponseFrame(request_id, response, &conn->tx);
}

void Server::FlushConnection(uint64_t conn_id, Connection* conn) {
  while (conn->tx_sent < conn->tx.size()) {
    ssize_t w = write(conn->fd, conn->tx.data() + conn->tx_sent,
                      conn->tx.size() - conn->tx_sent);
    if (w > 0) {
      conn->tx_sent += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateEpollInterest(conn_id, conn);
      return;
    }
    CloseConnection(conn_id);  // Peer vanished mid-write.
    return;
  }
  if (conn->tx_sent == conn->tx.size() && conn->tx_sent > 0) {
    conn->tx.clear();
    conn->tx_sent = 0;
  }
  if (conn->close_after_flush) {
    CloseConnection(conn_id);
    return;
  }
  UpdateEpollInterest(conn_id, conn);
}

void Server::WriteReady(uint64_t conn_id) {
  FlushConnection(conn_id, conns_.at(conn_id).get());
}

void Server::UpdateEpollInterest(uint64_t conn_id, Connection* conn) {
  bool want_write = conn->tx_sent < conn->tx.size();
  if (want_write == conn->want_write) return;
  conn->want_write = want_write;
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0);
  ev.data.u64 = conn_id;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void Server::CloseConnection(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  close(it->second->fd);
  conns_.erase(it);
}

void Server::DrainCompletions() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    done.swap(completions_);
  }
  for (Completion& c : done) {
    auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;  // Client disconnected; drop.
    it->second->tx.append(c.bytes);
    FlushConnection(c.conn_id, it->second.get());
  }
}

}  // namespace serve
}  // namespace pnn
