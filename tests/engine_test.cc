// End-to-end tests of the pnn::Engine facade and the workload generators,
// including the lower-bound construction validators.

#include "src/core/pnn.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/gamma/gamma_curves.h"
#include "src/workload/generators.h"

namespace pnn {
namespace {

TEST(Engine, DiscreteEndToEnd) {
  Rng rng(1001);
  auto pts = ToUniformUncertain(RandomDiscreteLocations(12, 3, 20, 4, &rng));
  Engine engine(pts);
  EXPECT_TRUE(engine.all_discrete());
  for (int t = 0; t < 50; ++t) {
    Point2 q{rng.Uniform(-25, 25), rng.Uniform(-25, 25)};
    // NonzeroNN agrees with brute force.
    EXPECT_EQ(engine.NonzeroNN(q), NonzeroNNBruteForce(pts, q));
    // Quantify within eps of exact.
    double eps = 0.05;
    auto est = engine.Quantify(q, eps);
    auto exact = engine.QuantifyExact(q);
    std::vector<double> e(pts.size(), 0.0), g(pts.size(), 0.0);
    for (const auto& x : exact) e[x.index] = x.probability;
    for (const auto& x : est) g[x.index] = x.probability;
    for (size_t i = 0; i < pts.size(); ++i) {
      EXPECT_NEAR(g[i], e[i], eps + 1e-9);
    }
    // Every quantified point is a nonzero NN candidate.
    auto nn = engine.NonzeroNN(q);
    for (const auto& x : exact) {
      EXPECT_TRUE(std::binary_search(nn.begin(), nn.end(), x.index));
    }
  }
}

TEST(Engine, ContinuousEndToEnd) {
  Rng rng(1003);
  UncertainSet pts;
  for (int i = 0; i < 8; ++i) {
    pts.push_back(UncertainPoint::UniformDisk(
        {rng.Uniform(-15, 15), rng.Uniform(-15, 15)}, rng.Uniform(0.5, 2.5)));
  }
  Engine::Options opt;
  opt.mc_rounds_override = 8000;
  Engine engine(pts, opt);
  EXPECT_TRUE(engine.all_continuous());
  for (int t = 0; t < 5; ++t) {
    Point2 q{rng.Uniform(-18, 18), rng.Uniform(-18, 18)};
    EXPECT_EQ(engine.NonzeroNN(q), NonzeroNNBruteForce(pts, q));
    auto est = engine.Quantify(q, 0.05);
    auto exact = engine.QuantifyExact(q);
    std::vector<double> e(pts.size(), 0.0), g(pts.size(), 0.0);
    for (const auto& x : exact) e[x.index] = x.probability;
    for (const auto& x : est) g[x.index] = x.probability;
    for (size_t i = 0; i < pts.size(); ++i) EXPECT_NEAR(g[i], e[i], 0.05);
  }
}

TEST(Engine, ThresholdAndMostLikelyConsistent) {
  Rng rng(1005);
  auto pts = ToUniformUncertain(RandomDiscreteLocations(10, 2, 15, 3, &rng));
  Engine engine(pts);
  for (int t = 0; t < 30; ++t) {
    Point2 q{rng.Uniform(-18, 18), rng.Uniform(-18, 18)};
    auto all = engine.Quantify(q, 0.02);
    auto thr = engine.ThresholdNN(q, 0.3, 0.02);
    for (const auto& x : thr) EXPECT_GT(x.probability, 0.3);
    int ml = engine.MostLikelyNN(q, 0.02);
    for (const auto& x : all) {
      EXPECT_LE(x.probability,
                1e-12 + [&] {
                  for (const auto& y : all) {
                    if (y.index == ml) return y.probability;
                  }
                  return 0.0;
                }());
    }
  }
}

TEST(Engine, ExpectedDistanceNNDiffersFromMostLikely) {
  // The YTX+10 point the paper cites: under large uncertainty the
  // expected-distance NN can disagree with the most-probable NN. A point
  // with a huge spread can have the smaller expected distance yet lose
  // the probability race almost always... construct the classic case:
  UncertainSet pts;
  // P_0: usually very near, sometimes very far: E[d] ~ 40, but it is the
  // nearest neighbor 60% of the time.
  pts.push_back(UncertainPoint::Discrete({{0.1, 0}, {100, 0}}, {0.6, 0.4}));
  // P_1: certain-ish at distance 2: E[d] ~ 2.05.
  pts.push_back(UncertainPoint::Discrete({{2, 0}, {2.1, 0}}, {0.5, 0.5}));
  Engine engine(pts);
  Point2 q{0, 0};
  EXPECT_EQ(engine.ExpectedDistanceNN(q), 1);   // Expected distance favors P_1...
  auto exact = engine.QuantifyExact(q);
  std::vector<double> pi(2, 0.0);
  for (const auto& e : exact) pi[e.index] = e.probability;
  EXPECT_NEAR(pi[0], 0.6, 1e-12);               // ...but P_0 wins 60/40.
  EXPECT_EQ(engine.MostLikelyNN(q, 0.01), 0);
}

TEST(Engine, RejectsInvalidEps) {
  UncertainSet pts;
  pts.push_back(UncertainPoint::Discrete({{0, 0}}, {1.0}));
  Engine engine(pts);
  EXPECT_DEATH(engine.Quantify({0, 0}, 0.0), "eps");
  EXPECT_DEATH(engine.Quantify({0, 0}, 1.5), "eps");
}

TEST(Engine, ValidatesOptionsAtConstruction) {
  UncertainSet pts;
  pts.push_back(UncertainPoint::Discrete({{0, 0}}, {1.0}));
  {
    Engine::Options opt;
    opt.default_eps = 0.0;
    EXPECT_DEATH(Engine(pts, opt), "default_eps");
    opt.default_eps = 1.0;
    EXPECT_DEATH(Engine(pts, opt), "default_eps");
  }
  {
    Engine::Options opt;
    opt.mc_delta = -0.5;
    EXPECT_DEATH(Engine(pts, opt), "mc_delta");
  }
  {
    Engine::Options opt;
    opt.spiral_budget_fraction = 0.0;
    EXPECT_DEATH(Engine(pts, opt), "spiral_budget_fraction");
    opt.spiral_budget_fraction = 1.5;
    EXPECT_DEATH(Engine(pts, opt), "spiral_budget_fraction");
  }
  {
    Engine::Options opt;
    opt.mc_stream_ids = {1, 2};  // Two ids for one point.
    EXPECT_DEATH(Engine(pts, opt), "mc_stream_ids");
  }
}

TEST(Engine, RejectsInvalidTau) {
  UncertainSet pts;
  pts.push_back(UncertainPoint::Discrete({{0, 0}}, {1.0}));
  Engine engine(pts);
  EXPECT_DEATH(engine.ThresholdNN({0, 0}, -0.01), "tau");
  EXPECT_DEATH(engine.ThresholdNN({0, 0}, 1.01), "tau");
  EXPECT_TRUE(engine.ThresholdNN({5, 5}, 1.0).empty());  // Boundary is legal.
}

TEST(Engine, NonzeroDeltaAndWithinMatchNonzeroNN) {
  Rng rng(1013);
  UncertainSet pts;
  for (int i = 0; i < 20; ++i) {
    pts.push_back(UncertainPoint::UniformDisk(
        {rng.Uniform(-15, 15), rng.Uniform(-15, 15)}, rng.Uniform(0.5, 2.5)));
  }
  Engine engine(pts);
  for (int t = 0; t < 30; ++t) {
    Point2 q{rng.Uniform(-18, 18), rng.Uniform(-18, 18)};
    EXPECT_EQ(engine.NonzeroNNWithin(q, engine.NonzeroDelta(q)), engine.NonzeroNN(q));
  }
  // A skip mask excludes exactly the masked points from both stages.
  std::vector<char> skip(pts.size(), 0);
  skip[0] = skip[7] = 1;
  UncertainSet rest;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (!skip[i]) rest.push_back(pts[i]);
  }
  Engine rest_engine(rest);
  Point2 q{1.5, -2.5};
  EXPECT_DOUBLE_EQ(engine.NonzeroDelta(q, &skip), rest_engine.NonzeroDelta(q));
}

TEST(Generators, DisjointDisksAreDisjoint) {
  Rng rng(1007);
  for (double lambda : {1.0, 2.0, 8.0}) {
    auto disks = DisjointDisks(30, lambda, &rng);
    for (size_t i = 0; i < disks.size(); ++i) {
      EXPECT_GE(disks[i].radius, 1.0);
      EXPECT_LE(disks[i].radius, lambda);
      for (size_t j = i + 1; j < disks.size(); ++j) {
        EXPECT_GT(Distance(disks[i].center, disks[j].center),
                  disks[i].radius + disks[j].radius);
      }
    }
  }
}

TEST(Generators, LowerBoundQuadraticVerticesAreOnDiagram) {
  // Every predicted vertex v satisfies delta_i(v) = delta_j(v) = Delta(v):
  // it is a genuine vertex of V!=0 (Theorem 2.10's proof).
  int m = 4;
  auto disks = LowerBoundQuadratic(m);
  auto verts = LowerBoundQuadraticVertices(m);
  EXPECT_EQ(verts.size(),
            2u * ((2 * m - 2) * (2 * m - 1) / 2));  // 2 per pair with j-i>=2.
  for (Point2 v : verts) {
    // A vertex of V!=0 lies on two curves: delta_i(v) = delta_j(v) =
    // Delta(v) for (at least) two disks i, j.
    double delta = DeltaUpperEnvelope(disks, v);
    int at_min = 0;
    for (const auto& d : disks) {
      double lo = std::max(0.0, Distance(v, d.center) - d.radius);
      if (std::abs(lo - delta) < 1e-9) ++at_min;
    }
    EXPECT_GE(at_min, 2) << "predicted vertex not realized at (" << v.x << "," << v.y
                         << ")";
  }
}

TEST(Generators, SpreadWorkloadHasExactRho) {
  Rng rng(1009);
  for (double rho : {1.0, 4.0, 32.0}) {
    auto pts = DiscreteWithSpread(10, 3, rho, 20, 2, &rng);
    double wmin = 1e300, wmax = 0;
    for (const auto& p : pts) {
      for (double w : p.discrete().weights) {
        wmin = std::min(wmin, w);
        wmax = std::max(wmax, w);
      }
    }
    EXPECT_NEAR(wmax / wmin, rho, 1e-9);
  }
}

TEST(Generators, LowerBoundConstructionShapes) {
  auto cubic = LowerBoundCubic(2);
  EXPECT_EQ(cubic.size(), 8u);
  auto equal = LowerBoundCubicEqualRadius(3);
  EXPECT_EQ(equal.size(), 9u);
  for (const auto& d : equal) EXPECT_DOUBLE_EQ(d.radius, 1.0);
  auto quad = LowerBoundQuadratic(5);
  EXPECT_EQ(quad.size(), 10u);
}

}  // namespace
}  // namespace pnn
