#include "src/fault/fault.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace pnn {
namespace fault {

namespace {

/// Process-wide count of armed sites. Fire()'s fast path reads only this:
/// zero means no site anywhere is armed, so the per-site lock is never
/// taken in a production process.
std::atomic<int> g_armed_count{0};

/// Registry of every constructed FailPoint. Sites register from static
/// initializers, so the registry is a Meyers singleton (constructed on
/// first use, never destroyed — FailPoints are static too and may be
/// consulted during shutdown).
class Registry {
 public:
  static Registry& Instance() {
    static Registry* r = new Registry();
    return *r;
  }

  void Register(FailPoint* fp) {
    std::lock_guard<std::mutex> lock(mu_);
    for (FailPoint* existing : sites_) {
      PNN_CHECK_MSG(std::string(existing->name()) != fp->name(),
                    "fault: duplicate failpoint name");
    }
    sites_.push_back(fp);
  }

  FailPoint* Find(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    for (FailPoint* fp : sites_) {
      if (name == fp->name()) return fp;
    }
    return nullptr;
  }

  std::vector<std::string> Names() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(sites_.size());
    for (FailPoint* fp : sites_) out.push_back(fp->name());
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<FailPoint*> All() {
    std::lock_guard<std::mutex> lock(mu_);
    return sites_;
  }

 private:
  std::mutex mu_;
  std::vector<FailPoint*> sites_;
};

}  // namespace

Schedule AlwaysFail(int error_code) {
  Schedule s;
  s.mode = Schedule::Mode::kAlways;
  s.error_code = error_code;
  return s;
}

Schedule FireOnNth(uint64_t nth, int error_code) {
  PNN_CHECK_MSG(nth >= 1, "fault: FireOnNth is 1-based");
  Schedule s;
  s.mode = Schedule::Mode::kNth;
  s.n = nth;
  s.error_code = error_code;
  return s;
}

Schedule FireTimesThenHeal(uint64_t times, int error_code) {
  Schedule s;
  s.mode = Schedule::Mode::kTimes;
  s.n = times;
  s.error_code = error_code;
  return s;
}

Schedule FireWithProbability(double p, uint64_t seed, int error_code) {
  PNN_CHECK_MSG(p >= 0.0 && p <= 1.0, "fault: probability outside [0, 1]");
  Schedule s;
  s.mode = Schedule::Mode::kProbability;
  s.p = p;
  s.seed = seed;
  s.error_code = error_code;
  return s;
}

FailPoint::FailPoint(const char* name) : name_(name) {
  Registry::Instance().Register(this);
}

int FailPoint::Fire() {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) return 0;
  return FireSlow();
}

int FailPoint::FireSlow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (schedule_.mode == Schedule::Mode::kNever) return 0;
  ++stats_.calls;
  ++calls_in_arm_;
  bool fire = false;
  switch (schedule_.mode) {
    case Schedule::Mode::kNever:
      break;
    case Schedule::Mode::kAlways:
      fire = true;
      break;
    case Schedule::Mode::kNth:
      fire = calls_in_arm_ == schedule_.n;
      break;
    case Schedule::Mode::kTimes:
      fire = calls_in_arm_ <= schedule_.n;
      break;
    case Schedule::Mode::kProbability: {
      std::uniform_real_distribution<double> uniform(0.0, 1.0);
      fire = uniform(rng_) < schedule_.p;
      break;
    }
  }
  if (fire) ++stats_.fired;
  return fire ? schedule_.error_code : 0;
}

int FailPoint::SetSchedule(const Schedule& schedule) {
  std::lock_guard<std::mutex> lock(mu_);
  bool was_armed = schedule_.mode != Schedule::Mode::kNever;
  bool now_armed = schedule.mode != Schedule::Mode::kNever;
  schedule_ = schedule;
  calls_in_arm_ = 0;
  if (schedule.mode == Schedule::Mode::kProbability) rng_.seed(schedule.seed);
  return (now_armed ? 1 : 0) - (was_armed ? 1 : 0);
}

SiteStats FailPoint::stats() {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Arm(const std::string& name, Schedule schedule) {
  FailPoint* fp = Registry::Instance().Find(name);
  PNN_CHECK_MSG(fp != nullptr, "fault: Arm on an unregistered failpoint");
  g_armed_count.fetch_add(fp->SetSchedule(schedule), std::memory_order_relaxed);
}

void Disarm(const std::string& name) {
  FailPoint* fp = Registry::Instance().Find(name);
  PNN_CHECK_MSG(fp != nullptr, "fault: Disarm on an unregistered failpoint");
  g_armed_count.fetch_add(fp->SetSchedule(Schedule()), std::memory_order_relaxed);
}

void DisarmAll() {
  for (FailPoint* fp : Registry::Instance().All()) {
    g_armed_count.fetch_add(fp->SetSchedule(Schedule()),
                            std::memory_order_relaxed);
  }
}

std::vector<std::string> ListFailpoints() { return Registry::Instance().Names(); }

SiteStats StatsFor(const std::string& name) {
  FailPoint* fp = Registry::Instance().Find(name);
  PNN_CHECK_MSG(fp != nullptr, "fault: StatsFor on an unregistered failpoint");
  return fp->stats();
}

bool AnyArmed() { return g_armed_count.load(std::memory_order_relaxed) > 0; }

}  // namespace fault
}  // namespace pnn
