// Cross-structure integration tests: every structure that answers the same
// question must give the same answer on shared workloads.
//
//  * NN!=0: V!=0 point location == Theorem 3.1/3.2 index == Lemma 2.1 scan.
//  * pi_i(q): exact sweep == V_Pr lookup; MC and spiral within their
//    respective error guarantees of the sweep; continuous quadrature vs MC.
//  * Engine facade routes consistently with the underlying structures.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/core/nnquery/nn_index.h"
#include "src/core/pnn.h"
#include "src/core/prob/monte_carlo.h"
#include "src/core/prob/spiral.h"
#include "src/core/prob/vpr_diagram.h"
#include "src/core/v0/nonzero_voronoi.h"
#include "src/util/rng.h"
#include "src/workload/generators.h"

namespace pnn {
namespace {

bool BoundaryOnly(const UncertainSet& pts, Point2 q, const std::vector<int>& a,
                  const std::vector<int>& b) {
  std::vector<int> sym;
  std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                std::back_inserter(sym));
  if (sym.empty()) return true;
  double min_max = 1e300;
  for (const auto& p : pts) min_max = std::min(min_max, p.MaxDistance(q));
  for (int i : sym) {
    if (std::abs(pts[i].MinDistance(q) - min_max) > 1e-6 * (1 + min_max)) return false;
  }
  return true;
}

TEST(Integration, ContinuousNonzeroNNThreeWays) {
  Rng rng(1101);
  auto disks = RandomDisks(25, 20, 0.5, 3.0, &rng);
  UncertainSet upts;
  for (const auto& d : disks) {
    upts.push_back(UncertainPoint::UniformDisk(d.center, d.radius));
  }
  NonzeroVoronoi v0(disks);
  NonzeroNNIndex index(disks);
  ASSERT_TRUE(v0.Validate());
  for (int t = 0; t < 300; ++t) {
    Point2 q{rng.Uniform(-25, 25), rng.Uniform(-25, 25)};
    auto scan = NonzeroNNBruteForce(upts, q);
    EXPECT_EQ(index.Query(q), scan);
    EXPECT_TRUE(BoundaryOnly(upts, q, v0.Query(q), scan)) << "t=" << t;
  }
}

TEST(Integration, DiscreteNonzeroNNThreeWays) {
  Rng rng(1103);
  auto locs = RandomDiscreteLocations(15, 3, 15, 3, &rng);
  auto upts = ToUniformUncertain(locs);
  NonzeroVoronoiDiscrete v0(locs);
  DiscreteNonzeroNNIndex index(locs);
  ASSERT_TRUE(v0.Validate());
  for (int t = 0; t < 300; ++t) {
    Point2 q{rng.Uniform(-20, 20), rng.Uniform(-20, 20)};
    auto scan = NonzeroNNBruteForce(upts, q);
    EXPECT_EQ(index.Query(q), scan);
    EXPECT_TRUE(BoundaryOnly(upts, q, v0.Query(q), scan)) << "t=" << t;
  }
}

TEST(Integration, QuantifiersAgreeWithinGuarantees) {
  Rng rng(1105);
  auto pts = ToUniformUncertain(RandomDiscreteLocations(6, 2, 8, 5, &rng));
  VprDiagram vpr(pts);
  SpiralSearchPNN spiral(pts);
  MonteCarloPNN::Options mco;
  mco.rounds_override = 40000;
  mco.seed = 5;
  MonteCarloPNN mc(pts, mco);
  const double mc_band = 0.02;  // ~6 sigma at s = 40000.

  for (int t = 0; t < 40; ++t) {
    Point2 q{rng.Uniform(-12, 12), rng.Uniform(-12, 12)};
    auto exact = QuantifyExactDiscrete(pts, q);
    std::vector<double> e(pts.size(), 0.0);
    for (const auto& x : exact) e[x.index] = x.probability;

    // V_Pr is exact.
    std::vector<double> v(pts.size(), 0.0);
    for (const auto& x : vpr.Query(q)) v[x.index] = x.probability;
    for (size_t i = 0; i < pts.size(); ++i) EXPECT_NEAR(v[i], e[i], 1e-9);

    // Spiral: one-sided eps.
    std::vector<double> s(pts.size(), 0.0);
    for (const auto& x : spiral.Query(q, 0.01)) s[x.index] = x.probability;
    for (size_t i = 0; i < pts.size(); ++i) {
      EXPECT_LE(s[i], e[i] + 1e-9);
      EXPECT_GE(s[i], e[i] - 0.01 - 1e-9);
    }

    // Monte Carlo: within the statistical band.
    std::vector<double> m(pts.size(), 0.0);
    for (const auto& x : mc.Query(q)) m[x.index] = x.probability;
    for (size_t i = 0; i < pts.size(); ++i) EXPECT_NEAR(m[i], e[i], mc_band);
  }
}

TEST(Integration, ContinuousQuadratureVsMonteCarlo) {
  Rng rng(1107);
  UncertainSet pts;
  for (int i = 0; i < 5; ++i) {
    Point2 c{rng.Uniform(-6, 6), rng.Uniform(-6, 6)};
    if (i % 2 == 0) {
      pts.push_back(UncertainPoint::UniformDisk(c, rng.Uniform(1.0, 2.0)));
    } else {
      pts.push_back(UncertainPoint::TruncatedGaussian(c, 1.5, 0.7));
    }
  }
  MonteCarloPNN::Options mco;
  mco.rounds_override = 40000;
  MonteCarloPNN mc(pts, mco);
  for (int t = 0; t < 6; ++t) {
    Point2 q{rng.Uniform(-8, 8), rng.Uniform(-8, 8)};
    auto exact = QuantifyNumericContinuous(pts, q, 1e-9);
    std::vector<double> e(pts.size(), 0.0), m(pts.size(), 0.0);
    for (const auto& x : exact) e[x.index] = x.probability;
    for (const auto& x : mc.Query(q)) m[x.index] = x.probability;
    for (size_t i = 0; i < pts.size(); ++i) EXPECT_NEAR(m[i], e[i], 0.02);
  }
}

TEST(Integration, EngineRoutesMatchUnderlyingStructures) {
  Rng rng(1109);
  auto pts = ToUniformUncertain(RandomDiscreteLocations(20, 3, 15, 3, &rng));
  Engine engine(pts);
  SpiralSearchPNN spiral(pts);
  for (int t = 0; t < 50; ++t) {
    Point2 q{rng.Uniform(-20, 20), rng.Uniform(-20, 20)};
    // The facade uses spiral search here (rho = 1, cheap budget).
    auto a = engine.Quantify(q, 0.05);
    auto b = spiral.Query(q, 0.05);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].index, b[i].index);
      EXPECT_DOUBLE_EQ(a[i].probability, b[i].probability);
    }
    EXPECT_EQ(engine.QuantifyExact(q).size(), QuantifyExactDiscrete(pts, q).size());
  }
}

TEST(Integration, MixedInputFallsBackGracefully) {
  UncertainSet pts;
  pts.push_back(UncertainPoint::UniformDisk({0, 0}, 1.0));
  pts.push_back(UncertainPoint::Discrete({{5, 0}, {6, 0}}, {0.5, 0.5}));
  Engine::Options opt;
  opt.mc_rounds_override = 5000;
  Engine engine(pts, opt);
  EXPECT_FALSE(engine.all_discrete());
  EXPECT_FALSE(engine.all_continuous());
  Point2 q{2.0, 0.0};
  EXPECT_EQ(engine.NonzeroNN(q), NonzeroNNBruteForce(pts, q));
  // Quantification must fall back to Monte Carlo and still sum to 1.
  double total = 0;
  for (const auto& e : engine.Quantify(q, 0.05)) total += e.probability;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

}  // namespace
}  // namespace pnn
