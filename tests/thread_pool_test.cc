// Tests for the work-stealing thread pool behind the batch executor.

#include "src/exec/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

namespace pnn {
namespace exec {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h = 0;
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForHandlesEdgeSizes) {
  ThreadPool pool(3);
  for (size_t n : {0u, 1u, 2u, 3u, 7u}) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(n, [&](size_t i) { sum += i + 1; });
    EXPECT_EQ(sum.load(), n * (n + 1) / 2) << "n=" << n;
  }
}

TEST(ThreadPool, ParallelForRunsConcurrently) {
  ThreadPool pool(4);
  // With 4 workers + the caller, at least 2 iterations must be able to
  // overlap: have each iteration wait until another one is in flight.
  std::mutex mu;
  std::condition_variable cv;
  int in_flight = 0;
  bool overlapped = false;
  pool.ParallelFor(8, [&](size_t) {
    std::unique_lock<std::mutex> lock(mu);
    ++in_flight;
    if (in_flight >= 2) {
      overlapped = true;
      cv.notify_all();
    } else {
      cv.wait_for(lock, std::chrono::seconds(10), [&] { return overlapped; });
    }
    --in_flight;
  });
  EXPECT_TRUE(overlapped);
}

TEST(ThreadPool, SubmitExecutesAllTasks) {
  std::atomic<int> count{0};
  std::mutex mu;
  std::condition_variable cv;
  constexpr int kTasks = 64;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&] {
        if (count.fetch_add(1) + 1 == kTasks) cv.notify_all();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::seconds(30), [&] { return count.load() == kTasks; });
  }
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(4, [&](size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.ParallelFor(100, [&](size_t) { total++; });
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, ParallelForUnderHeldLockNeverSelfDeadlocks) {
  // Tasks lock a shared mutex and run ParallelFor while holding it — the
  // shape of the lazy structure builds (EnsureMonteCarlo, EnsureRounds).
  // ParallelFor must never execute unrelated stolen tasks on the calling
  // thread mid-wait, or a stolen sibling would re-lock the held mutex on
  // the same thread and self-deadlock.
  ThreadPool pool(2);
  std::mutex m;
  std::atomic<int> done{0};
  for (int t = 0; t < 8; ++t) {
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(m);
      pool.ParallelFor(16, [](size_t) { std::this_thread::yield(); });
      done.fetch_add(1);
    });
  }
  while (done.load() < 8) std::this_thread::yield();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, WorkerInitRunsOncePerWorkerBeforeTasks) {
  static thread_local bool initialized = false;
  std::atomic<int> inits{0};
  ThreadPool::Options opts;
  opts.num_threads = 3;
  opts.worker_init = [&] {
    initialized = true;
    inits.fetch_add(1);
  };
  ThreadPool pool(opts);
  // Every task must observe its worker's init already done, however the
  // tasks are spread over the workers.
  std::atomic<int> seen{0};
  std::atomic<int> uninitialized{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&] {
      if (!initialized) uninitialized.fetch_add(1);
      seen.fetch_add(1);
    });
  }
  while (seen.load() < 32) std::this_thread::yield();
  EXPECT_EQ(uninitialized.load(), 0);
  // All three workers ran the init exactly once (threads spawn at
  // construction, so all inits have run by the time their tasks finish —
  // wait for the stragglers that may not have received a task).
  while (inits.load() < 3) std::this_thread::yield();
  EXPECT_EQ(inits.load(), 3);
}

TEST(Lane, RunsTasksInSubmissionOrderSerially) {
  ThreadPool pool(4);
  Lane lane(&pool);
  std::vector<int> order;
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  std::mutex mu;
  for (int i = 0; i < 50; ++i) {
    lane.Submit([&, i] {
      int now = concurrent.fetch_add(1) + 1;
      int prev = max_concurrent.load();
      while (now > prev && !max_concurrent.compare_exchange_weak(prev, now)) {
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(i);
      }
      std::this_thread::yield();
      concurrent.fetch_sub(1);
    });
  }
  lane.Drain();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);  // FIFO.
  EXPECT_EQ(max_concurrent.load(), 1);  // Never two lane tasks at once.
}

TEST(Lane, InterleavesWithPoolWorkAndSiblingLanes) {
  ThreadPool pool(2);
  Lane a(&pool);
  Lane b(&pool);
  std::atomic<int> a_done{0}, b_done{0};
  for (int i = 0; i < 20; ++i) {
    a.Submit([&] { a_done.fetch_add(1); });
    b.Submit([&] { b_done.fetch_add(1); });
  }
  a.Drain();
  b.Drain();
  EXPECT_EQ(a_done.load(), 20);
  EXPECT_EQ(b_done.load(), 20);
}

TEST(Lane, SubmitFromInsideLaneTaskContinuesChain) {
  ThreadPool pool(2);
  Lane lane(&pool);
  std::atomic<int> hops{0};
  std::function<void()> chain = [&] {
    if (hops.fetch_add(1) + 1 < 10) lane.Submit(chain);
  };
  lane.Submit(chain);
  while (hops.load() < 10) std::this_thread::yield();
  lane.Drain();
  EXPECT_EQ(hops.load(), 10);
}

}  // namespace
}  // namespace exec
}  // namespace pnn
