// Near-linear-size data structures for NN!=0 queries that avoid building
// V!=0 (Section 3).
//
// Both structures answer the two-stage query of the paper:
//   stage 1: compute Delta(q) = min_i Delta_i(q);
//   stage 2: report every i with delta_i(q) < Delta(q)   (Lemma 2.1).
//
// Continuous case (Theorem 3.1): Delta_i(q) = d(q, c_i) + r_i and
// delta_i(q) = d(q, c_i) - r_i, so both stages run on a weighted kd-tree
// (our substitution for the [KMR+16] dynamic additively-weighted Voronoi
// structure; see DESIGN.md §4).
//
// Discrete case (Theorem 3.2): Delta_i(q) = max_j d(q, p_ij) is evaluated
// over convex hull vertices, with best-first search over a centroid
// kd-tree using the bound Delta_i(q) >= d(q, centroid_i); stage 2 reports
// locations within Delta(q) and deduplicates owners (our substitution for
// the 3-level partition trees).

#ifndef PNN_CORE_NNQUERY_NN_INDEX_H_
#define PNN_CORE_NNQUERY_NN_INDEX_H_

#include <vector>

#include "src/geometry/circle.h"
#include "src/spatial/kdtree.h"

namespace pnn {

/// Theorem 3.1-style index for disk uncertainty regions: O(n) space,
/// output-sensitive queries.
class NonzeroNNIndex {
 public:
  explicit NonzeroNNIndex(const std::vector<Circle>& disks,
                          const KdBuildOptions& build = KdBuildOptions());

  /// Adoption from a serialized layout (the durable store's recovery
  /// path): `tree` must be the exported centers-weighted-by-radii tree of
  /// an index built over the same disks.
  explicit NonzeroNNIndex(KdTree tree);

  /// Delta(q) = min_i (d(q, c_i) + r_i). Disks with skip[i] != 0 are
  /// ignored (the dynamic engine's tombstone masks); +inf if all skipped.
  double Delta(Point2 q, const std::vector<char>* skip = nullptr) const;

  /// NN!=0(q): all i with d(q, c_i) - r_i < Delta(q), sorted.
  std::vector<int> Query(Point2 q) const;

  /// Stage 2 against an external bound: all non-skipped i with
  /// d(q, c_i) - r_i < bound, sorted. The dynamic engine passes the global
  /// Delta over all buckets, which is at most this bucket's own Delta.
  std::vector<int> QueryWithin(Point2 q, double bound,
                               const std::vector<char>* skip = nullptr) const;

  /// QueryWithin writing into `out` (cleared first) — with a warm scratch
  /// arena and a warm output buffer this allocates nothing.
  void QueryWithinInto(Point2 q, double bound, const std::vector<char>* skip,
                       std::vector<int>* out) const;

  size_t size() const { return tree_.size(); }

  /// Layout export for serialization.
  const KdTree& tree() const { return tree_; }

 private:
  KdTree tree_;  // Centers weighted by radii.
};

/// Section 3, remark (ii): the same two-stage NN!=0 query under the
/// L-infinity metric, where uncertainty regions are axis-aligned squares
/// (center, half-side). Delta and delta are Chebyshev distances +- the
/// half-side, so the weighted kd-tree works unchanged under the swapped
/// metric.
class LinfNonzeroNNIndex {
 public:
  /// `half_sides[i]` is half the side length of square i.
  LinfNonzeroNNIndex(std::vector<Point2> centers, std::vector<double> half_sides);

  /// Delta(q) = min_i (Linf(q, c_i) + h_i).
  double Delta(Point2 q) const;

  /// All i with Linf(q, c_i) - h_i < Delta(q), sorted.
  std::vector<int> Query(Point2 q) const;

 private:
  KdTree tree_;
};

/// Theorem 3.2-style index for discrete distributions: O(N) space
/// (N = sum of description complexities), empirically sublinear queries.
class DiscreteNonzeroNNIndex {
 public:
  explicit DiscreteNonzeroNNIndex(const std::vector<std::vector<Point2>>& points,
                                  const KdBuildOptions& build = KdBuildOptions());

  /// Assembly from precomputed parts — the staged EngineBuilder path,
  /// which gathers hulls/centroids/locations in bounded chunks and then
  /// pays only the two kd builds here (both fanning out per-subtree on
  /// build.pool). `hulls`/`centroids` are parallel to the uncertain
  /// points; `locations`/`owners` are the flattened location list in point
  /// order. Produces exactly the index the scanning constructor builds.
  DiscreteNonzeroNNIndex(std::vector<std::vector<Point2>> hulls,
                         std::vector<Point2> centroids,
                         std::vector<Point2> locations, std::vector<int> owners,
                         const KdBuildOptions& build);

  /// Adoption from serialized layouts (the durable store's recovery path):
  /// both trees must be the exports of an index built over the same
  /// points, so no kd construction runs here.
  DiscreteNonzeroNNIndex(std::vector<std::vector<Point2>> hulls,
                         KdTree centroid_tree, KdTree location_tree,
                         std::vector<int> owners);

  /// Delta(q) = min_i max_j d(q, p_ij), ignoring uncertain points with
  /// skip[i] != 0; +inf if all are skipped.
  double Delta(Point2 q, const std::vector<char>* skip = nullptr) const;

  /// NN!=0(q): all i with min_j d(q, p_ij) < Delta(q), sorted.
  std::vector<int> Query(Point2 q) const;

  /// All non-skipped i with min_j d(q, p_ij) < bound, sorted (stage 2
  /// against an externally supplied bound; see NonzeroNNIndex::QueryWithin).
  std::vector<int> QueryWithin(Point2 q, double bound,
                               const std::vector<char>* skip = nullptr) const;

  /// QueryWithin writing into `out` (cleared first); the location-hit
  /// buffer is a scratch lease, so warm calls allocate nothing.
  void QueryWithinInto(Point2 q, double bound, const std::vector<char>* skip,
                       std::vector<int>* out) const;

  size_t num_points() const { return hulls_.size(); }
  size_t num_locations() const { return owners_.size(); }

  /// Layout export for serialization (parallel to the adoption
  /// constructor's parameters).
  const std::vector<std::vector<Point2>>& hulls() const { return hulls_; }
  const KdTree& centroid_tree() const { return centroid_tree_; }
  const KdTree& location_tree() const { return location_tree_; }
  const std::vector<int>& owners() const { return owners_; }

 private:
  std::vector<std::vector<Point2>> hulls_;  // Convex hull per uncertain point.
  KdTree centroid_tree_;                    // Centroids, for stage-1 pruning.
  KdTree location_tree_;                    // All locations, for stage 2.
  std::vector<int> owners_;                 // Owner of each location.
};

}  // namespace pnn

#endif  // PNN_CORE_NNQUERY_NN_INDEX_H_
