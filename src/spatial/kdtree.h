// Static planar kd-tree with the query modes the paper's structures reduce
// to in our implementation:
//   * exact nearest neighbor and best-first incremental k-NN
//     ("spiral search", the practical [AC09] substitution of Section 4.3),
//   * disk range reporting,
//   * additively-weighted minimization  min_i d(q, p_i) + w_i
//     (computes Delta(q) over disk uncertainty regions, Theorem 3.1 stage 1),
//   * subtractive reporting  { i : d(q, p_i) - w_i < bound }
//     (reports NN!=0 candidates, Theorem 3.1 stage 2).
//
// The weighted modes prune with per-subtree min/max weights, which is what
// makes the two-stage query output-sensitive in practice.
//
// Construction can fan out per-subtree on an exec::ThreadPool (see
// BuildOptions): node indices are assigned from precomputed subtree sizes,
// and every task partitions only its own disjoint order_ range, so the
// parallel-built tree is bit-identical to the serial one — same split
// choices, same node ids, same leaf order (asserted node-for-node by
// tests/build_determinism_test.cc).

#ifndef PNN_SPATIAL_KDTREE_H_
#define PNN_SPATIAL_KDTREE_H_

#include <vector>

#include "src/exec/thread_pool.h"
#include "src/geometry/box2.h"
#include "src/geometry/point2.h"
#include "src/util/arena.h"

namespace pnn {

/// Metric used by a KdTree. Chebyshev (L-infinity) supports the paper's
/// Section 3 remark (ii): NN!=0 queries for square uncertainty regions.
enum class Metric {
  kEuclidean,
  kChebyshev,
};

/// How to run a kd-tree construction. The produced tree is bit-identical
/// regardless of pool presence, pool size, or cutoff. (Namespace-scope —
/// not nested in KdTree — so it can serve as a defaulted parameter of
/// KdTree's own constructor.)
struct KdBuildOptions {
  /// When set, subtrees larger than `parallel_cutoff` fork their two
  /// children onto the pool; at or below it construction stays sequential
  /// on the building thread (forking leaf-sized tasks would be all
  /// scheduling overhead). Any cutoff >= 0 is valid — 0 forks at every
  /// internal node.
  exec::ThreadPool* pool = nullptr;
  int parallel_cutoff = 4096;
  /// Leaf capacity: a range splits while it holds more than this many
  /// points. Wider leaves lengthen the SoA leaf scans (letting the SIMD
  /// kernels fill their lanes) at the cost of pruning depth and per-leaf
  /// over-scan; bench_leaf_width sweeps the tradeoff and docs/simd.md
  /// records the measurement. The sweep's best widths (16-32) only reach
  /// ~1.2x over 8 on the reference AVX2 host — below the promotion bar —
  /// so the default stays at the historical 8; widen per build if your
  /// workload's sweep says otherwise. Query answers are identical at
  /// every width — ties are pinned to the lowest point index (see the
  /// tie contract in kdtree.cc). Must be >= 1.
  int leaf_size = 8;
};

/// Static kd-tree over a fixed point set, with optional per-point weights.
class KdTree {
 public:
  using BuildOptions = KdBuildOptions;

  /// One node of the tree layout. Public (with the layout accessors below)
  /// so the durable store can serialize a built tree and adopt it back on
  /// recovery without re-running construction — see src/store/segment.cc.
  struct Node {
    Box2 box;
    int left = -1;    // Internal children, or -1 for leaves.
    int right = -1;
    int begin = 0;    // Range in order_ covered by this node.
    int end = 0;
    double min_w = 0; // Subtree weight bounds for the weighted queries.
    double max_w = 0;
  };

  /// Builds the tree. If `weights` is empty all weights are 0.
  explicit KdTree(std::vector<Point2> points, std::vector<double> weights = {},
                  Metric metric = Metric::kEuclidean,
                  const BuildOptions& build = BuildOptions());

  /// Adopts a previously exported layout instead of building: `order`,
  /// `nodes` and `root` must come from a tree constructed over the same
  /// points/weights/metric (the store checksums them together). The tree
  /// keeps whatever leaf width it was built with. Validation is O(n):
  /// bounds checks plus a leaf-partition check (leaves tile [0, n)
  /// contiguously and `order` is a permutation) — still far below the
  /// build this constructor exists to skip; SameStructure against a fresh
  /// build certifies the round trip in tests. `weights` must be explicit
  /// (one per point; the building constructor's empty-means-zeros
  /// shorthand is resolved before export).
  KdTree(std::vector<Point2> points, std::vector<double> weights, Metric metric,
         std::vector<int> order, std::vector<Node> nodes, int root);

  size_t size() const { return points_.size(); }
  const std::vector<Point2>& points() const { return points_; }

  /// Widest leaf of this tree (max over leaves of end - begin; 0 for an
  /// empty tree). Derived from the layout in both constructors — never
  /// serialized — so an adopted tree reports exactly the width of the
  /// build that produced it, with no segment-format bump.
  int leaf_width() const { return leaf_width_; }

  /// Layout export for serialization (parallel to the adoption
  /// constructor's parameters).
  const std::vector<double>& weights() const { return weights_; }
  Metric metric() const { return metric_; }
  const std::vector<int>& order() const { return order_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  int root() const { return root_; }

  /// Index of the nearest point to q (ties broken arbitrarily); n must be
  /// >= 1. If out_dist is non-null it receives the distance. When `skip` is
  /// non-null, points with skip[i] != 0 are ignored (the dynamic engine's
  /// tombstone masks); returns -1 with *out_dist = +inf if all are skipped.
  int Nearest(Point2 q, double* out_dist = nullptr,
              const std::vector<char>* skip = nullptr) const;

  /// Nearest in the SQUARED-distance domain (Euclidean metric only): same
  /// winner rule as Nearest but every comparison — leaf argmin, box
  /// pruning, child ordering — runs on fl(dx^2)+fl(dy^2) with no sqrt, so
  /// leaves go through the fused simd::ArgminSquaredDist kernel. This is
  /// the dynamic engine's per-round Monte-Carlo scan; it compares in the
  /// same domain as Delaunay::Nearest, keeping dyn-vs-static winners
  /// bit-identical. *out_sq receives the squared distance (+inf when all
  /// points are skipped).
  int NearestSquared(Point2 q, double* out_sq = nullptr,
                     const std::vector<char>* skip = nullptr) const;

  /// The k nearest points, ascending by distance. Returns fewer if k > n.
  std::vector<int> KNearest(Point2 q, int k) const;

  /// All indices with d(q, p_i) <= r (closed disk).
  std::vector<int> ReportWithin(Point2 q, double r) const;

  /// ReportWithin appending into `out` (not cleared) — the allocation-free
  /// form for callers holding a scratch or reused buffer.
  void ReportWithinInto(Point2 q, double r, std::vector<int>* out) const;

  /// min_i d(q, p_i) + w_i; sets *arg to the minimizing index. Points with
  /// skip[i] != 0 are ignored (+inf / -1 if all are skipped).
  double MinAdditivelyWeighted(Point2 q, int* arg = nullptr,
                               const std::vector<char>* skip = nullptr) const;

  /// All indices with d(q, p_i) - w_i < bound (strict).
  std::vector<int> ReportSubtractiveLess(Point2 q, double bound) const;

  /// ReportSubtractiveLess appending into `out` (not cleared).
  void ReportSubtractiveLessInto(Point2 q, double bound, std::vector<int>* out) const;

  /// Exact structural equality — points, weights, leaf order and every
  /// node field — certifying that two build schedules produced the same
  /// tree node-for-node (the parallel-build determinism tests).
  bool SameStructure(const KdTree& other) const;

  /// Pre-sizes the calling thread's scratch pools for this file's query
  /// paths (DFS stacks, best-first heaps) to `capacity` entries. Part of
  /// the worker warmup chain (exec::ThreadPool::Options::worker_init).
  static void PrewarmScratch(size_t capacity);

  /// Best-first enumeration of points in ascending distance from a query;
  /// each Next() costs O(log n) amortized. Used by the spiral-search
  /// quantifier to consume exactly as many neighbors as the error bound
  /// requires. The heap storage is leased from the per-thread scratch
  /// arena, so constructing one per query allocates nothing in steady
  /// state. Move-only (the lease follows the object).
  class Incremental {
   public:
    Incremental(const KdTree& tree, Point2 q);

    /// True if another point is available.
    bool HasNext() const { return !heap_->empty(); }

    /// Returns the next nearest point index; fills *dist if non-null.
    int Next(double* dist = nullptr);

   private:
    friend class KdTree;  // PrewarmScratch pre-sizes the Entry pool.
    struct Entry {
      double key;     // Lower bound on distance (exact for points).
      int node;       // Internal node id, or -1 when `point` is valid.
      int point;      // Original point index if node == -1.
      // Min-heap on key; equal keys expand nodes before emitting points
      // and emit points in ascending index order. That makes the emission
      // order of equal-distance points (key, index)-lexicographic — a pure
      // function of the point set, independent of the tree's leaf width.
      bool operator<(const Entry& o) const {
        if (key != o.key) return key > o.key;
        if ((node < 0) != (o.node < 0)) return node < 0;
        if (node < 0) return point > o.point;
        return node > o.node;
      }
    };
    const KdTree& tree_;
    Point2 q_;
    // Leased binary heap driven by std::push_heap/pop_heap — identical
    // ordering to the std::priority_queue it replaces.
    util::ScratchVec<Entry> heap_;
    void PushNode(int node);
    void Push(Entry e);
    Entry Pop();
  };

 private:
  /// Builds the subtree over order_[begin, end) into the preassigned slot
  /// nodes_[id] (and the id-contiguous slots after it), forking the two
  /// children onto build.pool above the cutoff.
  void BuildRange(int begin, int end, int id, const BuildOptions& build);
  double BoxDist(const Box2& box, Point2 p) const;

  /// Fills sx_/sy_/sw_ from points_/weights_ through order_. Called by
  /// both constructors — the adoption path derives the scan arrays on
  /// load, so the store's serialized segment format is unchanged.
  void BuildScanArrays();

  /// out[0..cnt) = metric distance from q to leaf-order entries
  /// [first, first + cnt) — the simd::DistScan call for Euclidean trees,
  /// a scalar max/abs loop for Chebyshev.
  void ScanDists(int first, int cnt, Point2 q, double* out) const;

  Metric metric_ = Metric::kEuclidean;
  std::vector<Point2> points_;
  std::vector<double> weights_;
  std::vector<int> order_;   // Permutation of point indices, leaf-contiguous.
  // SoA mirrors of points_/weights_ in leaf (order_) order:
  // sx_[i] = points_[order_[i]].x etc. Leaf scans read these contiguous
  // buffers through the util/simd kernels instead of gathering Point2s.
  std::vector<double> sx_, sy_, sw_;
  std::vector<Node> nodes_;
  int root_ = -1;
  int leaf_width_ = 0;  // Derived: max leaf extent (see leaf_width()).

  friend class Incremental;
};

}  // namespace pnn

#endif  // PNN_SPATIAL_KDTREE_H_
