// Parallel batch query executor over any pnn backend — the in-process
// equivalent of a pod-style request fan-out: one shared read-only set of
// structures (kd-trees, spiral quantifier, Monte-Carlo instantiations),
// many queries answered concurrently on a work-stealing pool.
//
// Since the api redesign the executor speaks api::QueryRequest /
// api::QueryResponse through one api::EngineRef instead of mirroring each
// backend's method quintet: RequestBatch() is the primitive (the serving
// layer's network batches land there), and the typed batch methods plus
// MixedBatch are thin shims over it with their historical signatures and
// bit-identical outputs.
//
// Determinism contract: every batch method returns results bit-identical
// to answering the queries one by one on a single thread, at any thread
// count. This holds because (a) all structures are prewarmed before the
// fan-out and queried through const, side-effect-free paths, and (b) the
// Monte-Carlo structure derives round r from the seed stream
// SplitSeed(seed, r) (see util/rng.h), so it is the same structure no
// matter which thread triggers its construction.
//
// One degenerate caveat: on inputs where a query is EXACTLY equidistant
// (to the last double bit) from two sampled locations, the underlying
// Delaunay walk may break the tie by walk position, which depends on a
// scheduling-sensitive locality hint. Such ties have measure zero for the
// randomly sampled instantiations the Monte-Carlo path queries.

#ifndef PNN_EXEC_BATCH_ENGINE_H_
#define PNN_EXEC_BATCH_ENGINE_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/api/engine_ref.h"
#include "src/api/query.h"
#include "src/core/pnn.h"
#include "src/dyn/dynamic_engine.h"
#include "src/exec/thread_pool.h"
#include "src/shard/sharded_engine.h"

namespace pnn {
namespace exec {

struct BatchOptions {
  /// Total concurrency, counting the calling thread (which participates in
  /// every batch). 1 = fully sequential; 0 = hardware concurrency.
  size_t num_threads = 0;
  /// Batches smaller than this run inline on the calling thread, skipping
  /// fan-out overhead.
  size_t min_parallel_batch = 32;
};

/// Per-batch execution statistics.
struct BatchStats {
  size_t num_queries = 0;
  size_t threads = 0;          // Threads actually used (1 when run inline).
  double wall_seconds = 0.0;
  double queries_per_sec = 0.0;
  /// Plan mix for quantification batches (0/0 for NonzeroNN batches).
  size_t spiral_plans = 0;
  size_t monte_carlo_plans = 0;
  /// Per-query latency percentiles, microseconds.
  double p50_micros = 0.0;
  double p99_micros = 0.0;
  /// Update ops and their latency percentiles (mixed batches only; 0/0/0
  /// for pure query batches).
  size_t num_updates = 0;
  double update_p50_micros = 0.0;
  double update_p99_micros = 0.0;
  /// dyn::AnswerCache traffic attributable to this batch: counter deltas
  /// on the pinned snapshot/view's cache across each query run. Duplicate
  /// requests within a batch dedup here — the first evaluation populates
  /// the pinned cache and the repeats hit it. 0/0 for backends without a
  /// cache (static Engine, caches disabled) or when another thread shares
  /// the same snapshot concurrently the split is approximate.
  size_t answer_cache_hits = 0;
  size_t answer_cache_misses = 0;
};

/// A batch answer: `values[i]` answers `queries[i]`, plus the stats.
template <typename T>
struct BatchResult {
  std::vector<T> values;
  BatchStats stats;
};

/// One operation of a mixed update/query stream (dynamic and sharded
/// backends). Retained as a convenience façade; it converts 1:1 into
/// api::QueryRequest (ToRequest) and MixedBatch routes through
/// RequestBatch.
struct MixedOp {
  enum class Kind { kInsert, kErase, kNonzeroNN, kQuantify, kThresholdNN };

  static MixedOp Insert(UncertainPoint p) {
    MixedOp op;
    op.kind = Kind::kInsert;
    op.point = std::move(p);
    return op;
  }
  static MixedOp Erase(dyn::Id id) {
    MixedOp op;
    op.kind = Kind::kErase;
    op.id = id;
    return op;
  }
  static MixedOp NonzeroNN(Point2 q) {
    MixedOp op;
    op.kind = Kind::kNonzeroNN;
    op.q = q;
    return op;
  }
  static MixedOp Quantify(Point2 q) {
    MixedOp op;
    op.kind = Kind::kQuantify;
    op.q = q;
    return op;
  }
  static MixedOp ThresholdNN(Point2 q, double tau) {
    MixedOp op;
    op.kind = Kind::kThresholdNN;
    op.q = q;
    op.tau = tau;
    return op;
  }

  bool is_update() const { return kind == Kind::kInsert || kind == Kind::kErase; }

  /// The api::QueryRequest this op denotes (`eps` applies to the
  /// quantification kinds, matching MixedBatch's batch-level eps).
  api::QueryRequest ToRequest(std::optional<double> eps) const;

  Kind kind = Kind::kNonzeroNN;
  std::optional<UncertainPoint> point;  // kInsert.
  dyn::Id id = -1;                      // kErase.
  Point2 q{0, 0};                       // Query kinds.
  double tau = 0.0;                     // kThresholdNN.
};

/// The answer to one MixedOp (only the member matching the op kind is set).
struct MixedResult {
  dyn::Id id = -1;                    // kInsert: new id; kErase: erased id or -1.
  std::vector<dyn::Id> nonzero;       // kNonzeroNN.
  std::vector<Quantification> quant;  // kQuantify / kThresholdNN.
};

/// Answers vectors of queries in parallel against a shared backend behind
/// an api::EngineRef. The backend must outlive the BatchEngine; the
/// BatchEngine itself is thread-compatible (use one per batching thread, or
/// serialize calls).
class BatchEngine {
 public:
  /// Any backend through the type-erased handle (the serving layer's
  /// constructor).
  explicit BatchEngine(api::EngineRef ref, BatchOptions options = {});

  explicit BatchEngine(const Engine* engine, BatchOptions options = {});

  /// Dynamic backend: query batches fan out exactly like the static
  /// backend (the engine's snapshots make concurrent queries safe), and
  /// MixedBatch() becomes available for interleaved update/query streams.
  explicit BatchEngine(dyn::DynamicEngine* engine, BatchOptions options = {});

  /// Sharded backend: like the dynamic backend (including MixedBatch), but
  /// over a shard::ShardedEngine — queries fan out across this batch pool
  /// while each query recombines across the shards.
  explicit BatchEngine(shard::ShardedEngine* engine, BatchOptions options = {});

  /// The primitive every other batch method shims onto: applies a mixed
  /// stream of api::QueryRequests in order. Updates run sequentially at
  /// their stream positions; maximal runs of consecutive queries pin the
  /// backend state once (EngineRef::Capture) and fan out over the pool.
  /// Results are identical to a fully sequential replay at any thread
  /// count; per-request errors come back as response statuses, never
  /// aborts. Deadlines are NOT enforced here — serve::Server sheds expired
  /// requests before batches reach this point.
  BatchResult<api::QueryResponse> RequestBatch(
      const std::vector<api::QueryRequest>& requests) const;

  /// NN!=0(q) for every query (Lemma 2.1 semantics).
  BatchResult<std::vector<int>> NonzeroNNBatch(const std::vector<Point2>& queries) const;

  /// Quantification estimates within additive eps for every query
  /// (spiral or Monte Carlo per the engine's plan rule).
  BatchResult<std::vector<Quantification>> QuantifyBatch(
      const std::vector<Point2>& queries,
      std::optional<double> eps = std::nullopt) const;

  /// Entries with pi_i(q) > tau for every query ([DYM+05] semantics).
  BatchResult<std::vector<Quantification>> ThresholdNNBatch(
      const std::vector<Point2>& queries, double tau,
      std::optional<double> eps = std::nullopt) const;

  /// Applies a mixed update/query stream in order (dynamic and sharded
  /// backends); see RequestBatch, which this converts into.
  BatchResult<MixedResult> MixedBatch(const std::vector<MixedOp>& ops,
                                      std::optional<double> eps = std::nullopt) const;

  /// The type-erased backend handle.
  const api::EngineRef& ref() const { return ref_; }
  /// The static backend (aborts unless constructed over an Engine).
  const Engine& engine() const;
  /// The dynamic backend (aborts unless constructed over a DynamicEngine).
  dyn::DynamicEngine& dynamic_engine() const;
  /// The sharded backend (aborts unless constructed over a ShardedEngine).
  shard::ShardedEngine& sharded_engine() const;
  size_t num_threads() const { return pool_ ? pool_->size() + 1 : 1; }

 private:
  template <typename T, typename Fn>
  BatchResult<T> Run(size_t n, const Fn& answer_one) const;
  /// Counts n queries against the plan rule at this eps (typed batches:
  /// one eps for the whole batch).
  void CountPlans(std::optional<double> eps, size_t n, BatchStats* stats) const;
  /// Counts request i's plan (spiral vs Monte Carlo at its eps) into
  /// `stats` for every quantification-kind request in [begin, end).
  void FillPlanStats(const std::vector<api::QueryRequest>& requests, size_t begin,
                     size_t end, BatchStats* stats) const;
  /// Prewarms the backend for every distinct eps the quantification
  /// requests in [begin, end) use, so the fan-out never contends on lazy
  /// structure construction.
  void PrewarmForRange(const std::vector<api::QueryRequest>& requests, size_t begin,
                       size_t end) const;

  api::EngineRef ref_;
  BatchOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // Null when num_threads == 1.
};

}  // namespace exec
}  // namespace pnn

#endif  // PNN_EXEC_BATCH_ENGINE_H_
