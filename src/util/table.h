// Markdown table writer used by every benchmark binary so the harness
// output can be pasted directly into EXPERIMENTS.md.

#ifndef PNN_UTIL_TABLE_H_
#define PNN_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace pnn {

/// Collects rows of strings and prints an aligned GitHub-flavored markdown
/// table to stdout.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; each cell is formatted by the caller (see Cell helpers).
  void AddRow(std::vector<std::string> cells);

  /// Prints the table, aligned, to stdout.
  void Print() const;

  /// Formats a double with the given precision.
  static std::string Num(double v, int precision = 3);
  /// Formats an integer.
  static std::string Int(long long v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pnn

#endif  // PNN_UTIL_TABLE_H_
