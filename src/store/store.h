// pnn::store — durable bucket snapshots + append-only op log with crash
// recovery and degraded-mode serving.
//
// A Store wraps a dyn::DynamicEngine with write-ahead durability:
//   * every acked Insert/Erase is appended to the op log (CRC-framed) and —
//     by default — fdatasync'd BEFORE the engine applies it and the call
//     returns, so an acked op is never lost;
//   * whenever maintenance changes the bucket set (merge/compaction), the
//     next mutation rotates the log: new buckets are serialized to
//     checksummed segment files, a fresh log generation re-describes the
//     tombstone masks and live tail, and the manifest is atomically swapped
//     to point at them — keeping the log proportional to the brute-force
//     tail instead of the history;
//   * Open() recovers by mapping the manifest's segments (adopting their
//     kd layouts — no rebuilds), replaying the log tail through the normal
//     insert/erase path, and truncating a torn final record. A corrupt
//     frame is never accepted; recovered answers are bit-identical to a
//     fresh static Engine over exactly the acked live set
//     (tests/store_recovery_test.cc).
//
// Failure model (docs/persistence.md "Failure model", docs/faults.md):
// IO failures after open do NOT abort. Any failed append, sync or
// checkpoint step puts the store in DEGRADED READ-ONLY state: the failing
// op is refused (never acked), every subsequent mutation returns
// kUnavailable, and queries keep serving from the in-memory engine —
// which holds exactly the acked history. Each refused mutation first
// attempts a Heal: truncate the log back to the last fully-acked boundary
// (discarding any torn or un-acked frames), reopen, and probe with an
// fdatasync; if a checkpoint's manifest install failed ambiguously, heal
// instead requires a full re-checkpoint under a fresh generation number
// (failed generations are never reused — a failed install may still have
// reached disk). Once a heal succeeds the store acks mutations again.
//
// Ordering invariant behind all of it: segment data and directory entries
// are fsynced before the log that references them, and the log before the
// manifest that references both — so a durable manifest implies a durable,
// internally consistent store image. See docs/persistence.md.

#ifndef PNN_STORE_STORE_H_
#define PNN_STORE_STORE_H_

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/dyn/dynamic_engine.h"
#include "src/store/io.h"
#include "src/store/log.h"
#include "src/store/manifest.h"
#include "src/util/status.h"

namespace pnn {
namespace store {

/// Counters for tests, benchmarks and ops visibility.
struct Stats {
  uint64_t log_appends = 0;
  uint64_t log_syncs = 0;
  uint64_t checkpoints = 0;
  uint64_t segments_written = 0;
  uint64_t segments_reused = 0;
  // Degraded-mode lifecycle:
  uint64_t degraded_entries = 0;    // Healthy -> degraded transitions.
  uint64_t heals = 0;               // Successful degraded -> healthy probes.
  uint64_t checkpoint_failures = 0; // Rotation attempts abandoned mid-way.
  // Recovery (set once by Open):
  uint64_t recovered_buckets = 0;
  uint64_t recovered_ops = 0;           // Log records replayed into the engine.
  uint64_t skipped_duplicate_ops = 0;   // Replayed records that were no-ops.
  uint64_t truncated_log_bytes = 0;     // Torn tail discarded by recovery.
};

/// Log/segment/manifest bookkeeping for one directory — the reusable guts
/// shared by Store (one engine) and ShardedStore (one core per shard).
/// Not thread-safe; the owner serializes all calls (Store's mutex, or the
/// sharded engine's update lock via its listener).
class StoreCore {
 public:
  /// What Open() recovered, for the owner to build its engine from.
  struct OpenResult {
    bool fresh = false;                 // No manifest: initialized empty.
    Manifest manifest;                  // Valid when !fresh.
    /// Buckets loaded from segments with their log-prescribed masks, in
    /// snapshot order. Feed to DynamicEngine's recovery constructor.
    std::vector<dyn::RecoveredBucket> recovered;
    /// Op records to replay on top (the checkpoint's tail re-description
    /// followed by post-checkpoint mutations), in log order. kMask records
    /// are already folded into `recovered` and do not appear here.
    std::vector<LogRecord> ops;
  };

  /// `engine_options` must carry the seed the store's segments were cut
  /// under (checked against both manifest and segments). `fsync` false
  /// trades durability of the last few ops for speed — frames are still
  /// CRC-gated, so recovery never accepts garbage, it just may lose
  /// unsynced acks (the bench's comparison mode).
  StoreCore(std::string dir, Engine::Options engine_options, bool fsync);

  /// Opens or initializes the directory; leaves the live log open for
  /// appends. Aborts on disk corruption (bad manifest, unloadable segment,
  /// a checkpoint whose pre-manifest delta records are missing) AND on IO
  /// failure — open-time IO failure has no acked state to protect, and a
  /// store that cannot write its first manifest is not a store; degraded
  /// mode starts only after a successful open. Tolerates and truncates a
  /// torn log tail.
  OpenResult Open();

  /// Frames and appends one record (seqno assigned here). `sync` false
  /// defers the fdatasync for group commit — call Sync() before acking.
  /// On failure the record is NOT acked, the core enters the failed state
  /// (healthy() false, all further appends refused), and any torn bytes
  /// are reclaimed by the next successful Heal().
  util::Status Append(LogRecord rec, bool sync = true);

  /// Flushes deferred appends (no-op when fsync is disabled). A successful
  /// return is the ack boundary: everything appended so far is durable and
  /// will survive Heal()'s rollback.
  util::Status Sync();

  /// Rotates iff `snap`'s bucket pointer set differs from the one the
  /// current log generation describes. Call after applying a mutation.
  util::Status MaybeCheckpoint(const dyn::Snapshot& snap, int64_t next_id,
                               uint64_t move_seq);

  /// Unconditional rotation against `snap`: writes segments for unseen
  /// buckets, starts a fresh generation with mask/tail delta records,
  /// atomically installs the manifest, then deletes the old generation's
  /// log and any dropped segments. On failure NOTHING is committed — the
  /// old generation stays live, generation numbers of failed attempts are
  /// never reused, and abandoned files are reclaimed as orphans at the
  /// next Open(). A failure at or after the manifest install additionally
  /// poisons the old log (the install may have reached disk, making old-
  /// log appends unrecoverable), so Heal() re-runs the rotation instead of
  /// probing.
  util::Status Checkpoint(const dyn::Snapshot& snap, int64_t next_id,
                          uint64_t move_seq);

  /// Attempts to leave the failed state. Tear repair: truncate the log to
  /// the last acked boundary, reopen, probe with an fdatasync. Manifest
  /// ambiguity: re-run Checkpoint(snap, ...) under a fresh generation.
  /// No-op when healthy. On failure the core stays failed and the error
  /// is returned.
  util::Status Heal(const dyn::Snapshot& snap, int64_t next_id,
                    uint64_t move_seq);

  /// False once any append/sync/checkpoint step failed; mutations are
  /// refused until a Heal() succeeds. Queries are unaffected — the owner
  /// keeps serving its in-memory engine.
  bool healthy() const { return !failed_; }

  /// The failure that entered the current degraded episode (Ok when
  /// healthy).
  const util::Status& last_error() const { return last_error_; }

  /// Logical end-of-log offset (bytes successfully appended). Pair with
  /// RollbackTo to undo appends that must not survive — ShardedStore's
  /// move rollback: if the destination logged kMoveIn but the source
  /// failed to log kMoveOut, the dangling kMoveIn would resurrect the
  /// point after a crash.
  uint64_t LogOffset() const { return log_bytes_; }

  /// Discards every append past `offset` (same generation as when the
  /// offset was taken — no checkpoint may intervene): truncates, reopens
  /// and re-probes the log. Leaves the core failed if the repair itself
  /// fails.
  util::Status RollbackTo(uint64_t offset);

  /// Marks recovery complete for bookkeeping done by the owner.
  void NoteRecoveredOps(uint64_t replayed, uint64_t skipped);

  const std::string& dir() const { return dir_; }
  uint64_t generation() const { return generation_; }
  const Stats& stats() const { return stats_; }

 private:
  void InitFresh();
  void CleanupOrphans(const std::vector<uint64_t>& live_segments);
  util::Status Fail(util::Status status);   // Enter/extend the failed state.
  util::Status HealTear();                  // Truncate + reopen + probe.
  std::string SegmentPath(uint64_t file_id) const;
  std::string LogPath(uint64_t generation) const;

  std::string dir_;
  Engine::Options engine_options_;
  bool fsync_ = true;

  File log_;
  uint64_t generation_ = 0;
  uint64_t next_generation_ = 1;  // Ticket counter; failed attempts burn one.
  uint64_t seqno_ = 1;
  uint64_t next_file_id_ = 1;
  bool dirty_ = false;  // Appends since the last Sync().
  /// Degraded state. log_bytes_ is the logical log length (every byte of
  /// every successful append); healthy_bytes_ trails it at the last ack
  /// boundary (successful Sync) and is where Heal() truncates back to.
  bool failed_ = false;
  bool manifest_dirty_ = false;  // Failed install may be durable.
  util::Status last_error_;
  uint64_t log_bytes_ = 0;
  uint64_t healthy_bytes_ = 0;
  /// Buckets the current generation's manifest covers, with their segment
  /// file ids. Keyed by bucket pointer identity (shared_ptrs keep the
  /// address from being recycled): buckets are immutable, so pointer
  /// equality is version equality.
  std::vector<std::pair<std::shared_ptr<const dyn::Bucket>, uint64_t>> tracked_;
  Stats stats_;
};

/// Durable single-engine store. Thread safety matches DynamicEngine:
/// queries (through engine()) are lock-free and concurrent; mutations
/// serialize on an internal mutex.
class Store {
 public:
  struct Options {
    /// Engine configuration. engine.engine.seed is pinned into the
    /// manifest on first open and must match on every later one.
    dyn::Options dynamic;
    /// Fdatasync the log before acking each mutation (the durability
    /// contract). Disable only to measure its cost.
    bool fsync = true;
  };

  /// Opens an existing store (recovering if it crashed) or initializes an
  /// empty one. Never returns a partially recovered store: corruption
  /// beyond a torn log tail aborts.
  static std::unique_ptr<Store> Open(const std::string& dir, Options options);

  ~Store();

  /// Logs, syncs, applies, acks. An OK id is durable: a crash after return
  /// replays it. A non-OK status (kUnavailable once degraded, the
  /// underlying kIoError on the transition) means the op was NOT applied
  /// and will not resurface after recovery; the store is degraded until a
  /// later mutation heals it.
  util::StatusOr<dyn::Id> Insert(UncertainPoint point);

  /// Group commit: one fdatasync for the whole batch, then all applies.
  /// All-or-nothing — on a non-OK status no point of the batch is applied
  /// or will survive recovery.
  util::StatusOr<std::vector<dyn::Id>> InsertBatch(
      std::vector<UncertainPoint> points);

  /// OK(false) if `id` is not live (nothing logged); OK(true) once the
  /// erase is durable; non-OK and not applied when degraded.
  util::StatusOr<bool> Erase(dyn::Id id);

  /// Forces a log rotation against the current snapshot.
  util::Status Checkpoint();

  /// False while the store is degraded read-only: mutations return
  /// kUnavailable, queries keep working. status() carries the cause.
  bool healthy() const;
  util::Status status() const;

  /// The live engine; all its const query methods are safe to call
  /// concurrently with mutations on this store.
  const dyn::DynamicEngine& engine() const { return *engine_; }

  Stats stats() const;
  const std::string& dir() const { return core_.dir(); }

 private:
  Store(const std::string& dir, Options options);
  void RecoverLocked(StoreCore::OpenResult result);
  util::Status EnsureHealthyLocked();

  Options options_;
  mutable std::mutex mu_;  // Serializes mutations and checkpoints.
  StoreCore core_;
  std::unique_ptr<dyn::DynamicEngine> engine_;
  dyn::Id next_id_ = 0;  // Mirror of the engine's id counter (WAL needs
                         // the id before the engine assigns it).
};

}  // namespace store
}  // namespace pnn

#endif  // PNN_STORE_STORE_H_
