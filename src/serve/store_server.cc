#include "src/serve/store_server.h"

#include <utility>

namespace pnn {
namespace serve {

std::unique_ptr<StoreServer> StoreServer::Open(const std::string& dir,
                                               Options options) {
  std::unique_ptr<StoreServer> s(new StoreServer());
  api::EngineRef ref;
  if (options.num_shards == 0) {
    s->store_ = store::Store::Open(dir, std::move(options.store));
    ref = api::EngineRef(s->store_.get());
  } else {
    options.sharded.sharded.num_shards = options.num_shards;
    s->sharded_store_ = store::ShardedStore::Open(dir, std::move(options.sharded));
    ref = api::EngineRef(s->sharded_store_.get());
  }
  s->server_ = std::make_unique<Server>(ref, options.server);
  return s;
}

StoreServer::~StoreServer() { server_->Stop(); }

}  // namespace serve
}  // namespace pnn
