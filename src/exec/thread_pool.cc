#include "src/exec/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace pnn {
namespace exec {

namespace {
// Which pool (if any) the current thread is a worker of, so a nested
// ParallelFor can help-drain instead of blocking on its own pool.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local size_t tls_worker_index = 0;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = num_threads > 0 ? num_threads
                             : std::max<size_t>(1, std::thread::hardware_concurrency());
  queues_.reserve(n);
  for (size_t i = 0; i < n; ++i) queues_.push_back(std::make_unique<WorkQueue>());
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    WorkQueue& q = *queues_[next_queue_];
    next_queue_ = (next_queue_ + 1) % queues_.size();
    std::lock_guard<std::mutex> qlock(q.mu);
    q.tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

std::function<void()> ThreadPool::NextTask(size_t self) {
  {  // Own queue first, newest task (LIFO).
    WorkQueue& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      auto task = std::move(q.tasks.back());
      q.tasks.pop_back();
      return task;
    }
  }
  // Steal the oldest task (FIFO) from a sibling, scanning from self + 1 so
  // victims differ across thieves.
  for (size_t off = 1; off < queues_.size(); ++off) {
    WorkQueue& q = *queues_[(self + off) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      auto task = std::move(q.tasks.front());
      q.tasks.pop_front();
      return task;
    }
  }
  return {};
}

void ThreadPool::WorkerLoop(size_t self) {
  tls_pool = this;
  tls_worker_index = self;
  for (;;) {
    std::function<void()> task = NextTask(self);
    if (task) {
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    if (stop_) return;
    // Re-check under the lock: a submission may have raced our scan.
    bool any = false;
    for (const auto& q : queues_) {
      std::lock_guard<std::mutex> qlock(q->mu);
      if (!q->tasks.empty()) {
        any = true;
        break;
      }
    }
    if (any) continue;
    wake_cv_.wait(lock);
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  size_t runners = std::min(size(), n);
  if (runners <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Shared state outlives this frame only through the runner tasks, which
  // all finish before the final wait returns.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  auto done = std::make_shared<std::atomic<size_t>>(0);
  auto done_mu = std::make_shared<std::mutex>();
  auto done_cv = std::make_shared<std::condition_variable>();
  size_t total = runners + 1;  // Pool runners + the calling thread.
  auto runner = [next, done, done_mu, done_cv, total, n, &body] {
    for (size_t i = next->fetch_add(1); i < n; i = next->fetch_add(1)) body(i);
    if (done->fetch_add(1) + 1 == total) {
      std::lock_guard<std::mutex> lock(*done_mu);
      done_cv->notify_all();
    }
  };
  for (size_t r = 0; r < runners; ++r) Submit(runner);
  runner();  // The caller participates instead of blocking idle.
  if (tls_pool == this) {
    // Nested call from one of our own workers: blocking would starve the
    // runner tasks we just queued, so help-drain until they all finish.
    while (done->load() != total) {
      std::function<void()> task = NextTask(tls_worker_index);
      if (task) {
        task();
      } else {
        std::this_thread::yield();
      }
    }
    return;
  }
  std::unique_lock<std::mutex> lock(*done_mu);
  done_cv->wait(lock, [&] { return done->load() == total; });
}

}  // namespace exec
}  // namespace pnn
