// Differential tests for the util/simd dispatch kernels. Every kernel is
// checked against an independent reference loop written here, in BOTH
// dispatch modes (forced scalar, then whatever the host resolves — AVX2 on
// AVX2 hosts, scalar elsewhere), over lengths 0..4*lane+3 so every vector
// tail remainder is exercised, plus NaN/inf payloads and tie-heavy argmin
// inputs. The scan/argmin kernels must match BIT-FOR-BIT; Product carries
// the documented 1e-9 reassociation contract (docs/simd.md). A final
// section runs the dynamic-vs-static engine differential with dispatch
// forced scalar, and compares engine answers across dispatch modes.

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/dyn/dynamic_engine.h"
#include "src/util/rng.h"
#include "src/util/simd.h"
#include "src/util/stats.h"

namespace pnn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Restores host-resolved dispatch even when an assertion fails mid-test.
struct ScopedScalar {
  explicit ScopedScalar(bool on) { simd::ForceScalarForTest(on); }
  ~ScopedScalar() { simd::ForceScalarForTest(false); }
};

// Independent references (not the dispatch scalar table — the point is to
// certify that table too, not compare it with itself).
double RefSqDist(double x, double y, double qx, double qy) {
  double dx = x - qx, dy = y - qy;
  return dx * dx + dy * dy;
}

size_t RefMinIndex(const std::vector<double>& v) {
  double best = kInf;
  size_t best_i = v.size();
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] < best) {
      best = v[i];
      best_i = i;
    }
  }
  return best_i;
}

std::vector<size_t> TestLengths() {
  std::vector<size_t> lens;
  for (size_t n = 0; n <= 19; ++n) lens.push_back(n);  // All tail remainders.
  for (size_t n : {31u, 32u, 33u, 64u, 100u, 257u, 1000u}) lens.push_back(n);
  return lens;
}

void CheckAllKernels(const std::vector<double>& xs, const std::vector<double>& ys,
                     double qx, double qy, bool forced_scalar) {
  SCOPED_TRACE(testing::Message() << "n=" << xs.size() << " mode="
                                  << (forced_scalar ? "scalar" : "resolved"));
  ScopedScalar mode(forced_scalar);
  size_t n = xs.size();
  std::vector<double> ref_sq(n), ref_d(n);
  for (size_t i = 0; i < n; ++i) {
    ref_sq[i] = RefSqDist(xs[i], ys[i], qx, qy);
    ref_d[i] = std::sqrt(ref_sq[i]);
  }

  std::vector<double> got(n, -1.0);
  simd::SquaredDistScan(xs.data(), ys.data(), n, qx, qy, got.data());
  for (size_t i = 0; i < n; ++i) {
    if (std::isnan(ref_sq[i])) {
      EXPECT_TRUE(std::isnan(got[i])) << i;
    } else {
      EXPECT_EQ(got[i], ref_sq[i]) << i;  // Bit-identity contract.
    }
  }

  simd::DistScan(xs.data(), ys.data(), n, qx, qy, got.data());
  for (size_t i = 0; i < n; ++i) {
    if (std::isnan(ref_d[i])) {
      EXPECT_TRUE(std::isnan(got[i])) << i;
    } else {
      EXPECT_EQ(got[i], ref_d[i]) << i;
    }
  }

  size_t want_i = RefMinIndex(ref_sq);
  double min_sq = -1.0;
  ptrdiff_t got_i = simd::ArgminSquaredDist(xs.data(), ys.data(), n, qx, qy, &min_sq);
  if (want_i == n) {
    EXPECT_EQ(got_i, -1);
    EXPECT_EQ(min_sq, kInf);
  } else {
    EXPECT_EQ(static_cast<size_t>(got_i), want_i);
    EXPECT_EQ(min_sq, ref_sq[want_i]);
  }

  size_t want_v = RefMinIndex(ref_d);
  double min_v = -1.0;
  size_t got_v = simd::ArgminScan(ref_d.data(), n, &min_v);
  EXPECT_EQ(got_v, want_v);
  EXPECT_EQ(min_v, want_v == n ? kInf : ref_d[want_v]);
}

TEST(SimdKernelTest, RandomInputsAllLengthsBothModes) {
  Rng rng(20260809);
  for (size_t n : TestLengths()) {
    std::vector<double> xs(n), ys(n);
    for (size_t i = 0; i < n; ++i) {
      xs[i] = rng.Uniform(-100, 100);
      ys[i] = rng.Uniform(-100, 100);
    }
    double qx = rng.Uniform(-100, 100), qy = rng.Uniform(-100, 100);
    CheckAllKernels(xs, ys, qx, qy, /*forced_scalar=*/true);
    CheckAllKernels(xs, ys, qx, qy, /*forced_scalar=*/false);
  }
}

TEST(SimdKernelTest, NanAndInfPayloads) {
  Rng rng(42);
  for (size_t n : TestLengths()) {
    if (n == 0) continue;
    std::vector<double> xs(n), ys(n);
    for (size_t i = 0; i < n; ++i) {
      double u = rng.Uniform(0, 1);
      if (u < 0.15) {
        xs[i] = kNaN;
        ys[i] = rng.Uniform(-5, 5);
      } else if (u < 0.3) {
        xs[i] = rng.Bernoulli(0.5) ? kInf : -kInf;
        ys[i] = rng.Uniform(-5, 5);
      } else {
        xs[i] = rng.Uniform(-5, 5);
        ys[i] = rng.Uniform(-5, 5);
      }
    }
    CheckAllKernels(xs, ys, 0.25, -0.5, true);
    CheckAllKernels(xs, ys, 0.25, -0.5, false);
  }
  // Degenerate all-NaN / all-inf rows must report "no winner".
  for (double fill : {kNaN, kInf}) {
    std::vector<double> xs(13, fill), ys(13, fill);
    CheckAllKernels(xs, ys, 0.0, 0.0, true);
    CheckAllKernels(xs, ys, 0.0, 0.0, false);
  }
}

TEST(SimdKernelTest, TieHeavyArgminBreaksByFirstIndex) {
  Rng rng(7);
  for (size_t n : TestLengths()) {
    if (n == 0) continue;
    // Coordinates drawn from a 3-value grid: massive duplication, so the
    // argmin hits its tie path constantly.
    std::vector<double> xs(n), ys(n);
    for (size_t i = 0; i < n; ++i) {
      xs[i] = static_cast<double>(rng.UniformInt(0, 2));
      ys[i] = static_cast<double>(rng.UniformInt(0, 2));
    }
    CheckAllKernels(xs, ys, 1.0, 1.0, true);
    CheckAllKernels(xs, ys, 1.0, 1.0, false);
  }
  // Explicit worst case: every element identical.
  std::vector<double> same(37, 2.0);
  CheckAllKernels(same, same, 0.0, 0.0, true);
  CheckAllKernels(same, same, 0.0, 0.0, false);
}

TEST(SimdKernelTest, ProductMatchesSequentialTo1e9) {
  Rng rng(99);
  for (size_t n : TestLengths()) {
    std::vector<double> v(n);
    for (size_t i = 0; i < n; ++i) v[i] = rng.Uniform(0.0, 1.0);
    double ref = 1.0;
    for (double f : v) ref *= f;
    {
      ScopedScalar scalar(true);
      EXPECT_EQ(simd::Product(v.data(), n), ref);  // Scalar is bit-exact.
    }
    {
      ScopedScalar resolved(false);
      double got = simd::Product(v.data(), n);
      EXPECT_NEAR(got, ref, 1e-9 * std::max(1.0, std::abs(ref)));
    }
    // An exact zero annihilates in every association order.
    if (n >= 3) {
      v[n / 2] = 0.0;
      ScopedScalar resolved(false);
      EXPECT_EQ(simd::Product(v.data(), n), 0.0);
    }
  }
}

TEST(MinIndexTest, ContractCorners) {
  EXPECT_EQ(MinIndex(nullptr, 0), 0u);
  double one[] = {3.0};
  EXPECT_EQ(MinIndex(one, 1), 0u);
  double ties[] = {2.0, 1.0, 1.0, 5.0, 1.0};
  EXPECT_EQ(MinIndex(ties, 5), 1u);  // Earliest index wins ties.
  double with_nan[] = {kNaN, 4.0, kNaN, 2.0, 2.0};
  EXPECT_EQ(MinIndex(with_nan, 5), 3u);  // NaN never wins.
  double all_nan[] = {kNaN, kNaN};
  EXPECT_EQ(MinIndex(all_nan, 2), 2u);
  double all_inf[] = {kInf, kInf, kInf};
  EXPECT_EQ(MinIndex(all_inf, 3), 3u);  // Nothing beats +inf.
  double neg[] = {0.0, -kInf, -kInf};
  EXPECT_EQ(MinIndex(neg, 3), 1u);
}

// ---------------------------------------------------------------------
// Engine-level differential: the full dynamic-vs-static harness with the
// dispatch forced scalar (the satellite "forced-scalar run"), and a
// cross-mode comparison of engine answers.
// ---------------------------------------------------------------------

UncertainPoint RandomTestPoint(Rng* rng) {
  Point2 c{rng->Uniform(-30, 30), rng->Uniform(-30, 30)};
  if (rng->Bernoulli(0.5)) {
    int k = static_cast<int>(rng->UniformInt(1, 4));
    std::vector<Point2> locs(k);
    std::vector<double> w(k);
    double total = 0.0;
    for (int s = 0; s < k; ++s) {
      locs[s] = {c.x + rng->Uniform(-3, 3), c.y + rng->Uniform(-3, 3)};
      w[s] = rng->Uniform(0.05, 1.0);
      total += w[s];
    }
    for (int s = 0; s < k; ++s) w[s] /= total;
    return UncertainPoint::Discrete(std::move(locs), std::move(w));
  }
  return UncertainPoint::UniformDisk(c, rng->Uniform(0.5, 4.0));
}

TEST(SimdEngineDifferentialTest, ForcedScalarDynMatchesStaticExactly) {
  ScopedScalar scalar(true);
  Rng rng(1234);
  dyn::Options dopt;
  dopt.engine.seed = 77;
  dopt.engine.mc_rounds_override = 48;
  dopt.tail_limit = 8;
  dyn::DynamicEngine dynamic(dopt);
  std::vector<dyn::Id> live;
  for (int op = 0; op < 300; ++op) {
    int r = static_cast<int>(rng.UniformInt(0, 99));
    if (r < 50 || live.empty()) {
      live.push_back(dynamic.Insert(RandomTestPoint(&rng)));
      continue;
    }
    if (r < 75) {
      size_t pick = static_cast<size_t>(rng.UniformInt(0, live.size() - 1));
      ASSERT_TRUE(dynamic.Erase(live[pick]));
      live.erase(live.begin() + static_cast<long>(pick));
      continue;
    }
    std::vector<dyn::Id> ids;
    UncertainSet live_set = dynamic.LiveSet(&ids);
    Engine reference(live_set, dynamic.ReferenceEngineOptions());
    Point2 q{rng.Uniform(-35, 35), rng.Uniform(-35, 35)};

    std::vector<dyn::Id> got_nn = dynamic.NonzeroNN(q);
    std::vector<int> want_rank = reference.NonzeroNN(q);
    std::vector<dyn::Id> want_nn;
    for (int i : want_rank) want_nn.push_back(ids[i]);
    EXPECT_EQ(got_nn, want_nn);

    std::vector<Quantification> got_q = dynamic.Quantify(q, 0.1);
    std::vector<Quantification> want_q = reference.Quantify(q, 0.1);
    ASSERT_EQ(got_q.size(), want_q.size());
    for (size_t i = 0; i < got_q.size(); ++i) {
      EXPECT_EQ(got_q[i].index, ids[want_q[i].index]);
      EXPECT_EQ(got_q[i].probability, want_q[i].probability);
    }
  }
}

// Replays an identical op/query schedule in each dispatch mode and compares
// the collected answers: ids must match exactly (distance scans and argmins
// are bit-identical across modes), probabilities to 1e-9 (the spiral path's
// survival products may reassociate). On hosts without AVX2 both runs are
// scalar and the comparison is trivially exact.
TEST(SimdEngineDifferentialTest, CrossModeAnswersAgree) {
  struct Answers {
    std::vector<std::vector<dyn::Id>> nn;
    std::vector<std::vector<Quantification>> quant;
  };
  auto run = [](bool forced_scalar) {
    ScopedScalar mode(forced_scalar);
    Answers a;
    Rng rng(5678);
    dyn::Options dopt;
    dopt.engine.seed = 31;
    dopt.engine.mc_rounds_override = 64;
    dopt.tail_limit = 8;
    dyn::DynamicEngine dynamic(dopt);
    std::vector<dyn::Id> live;
    for (int op = 0; op < 300; ++op) {
      int r = static_cast<int>(rng.UniformInt(0, 99));
      if (r < 50 || live.empty()) {
        live.push_back(dynamic.Insert(RandomTestPoint(&rng)));
        continue;
      }
      if (r < 75) {
        size_t pick = static_cast<size_t>(rng.UniformInt(0, live.size() - 1));
        dynamic.Erase(live[pick]);
        live.erase(live.begin() + static_cast<long>(pick));
        continue;
      }
      Point2 q{rng.Uniform(-35, 35), rng.Uniform(-35, 35)};
      a.nn.push_back(dynamic.NonzeroNN(q));
      a.quant.push_back(dynamic.Quantify(q, 0.1));
    }
    return a;
  };
  Answers scalar = run(true);
  Answers resolved = run(false);
  ASSERT_EQ(scalar.nn.size(), resolved.nn.size());
  for (size_t i = 0; i < scalar.nn.size(); ++i) {
    EXPECT_EQ(scalar.nn[i], resolved.nn[i]) << "query " << i;
  }
  ASSERT_EQ(scalar.quant.size(), resolved.quant.size());
  for (size_t i = 0; i < scalar.quant.size(); ++i) {
    ASSERT_EQ(scalar.quant[i].size(), resolved.quant[i].size()) << "query " << i;
    for (size_t j = 0; j < scalar.quant[i].size(); ++j) {
      EXPECT_EQ(scalar.quant[i][j].index, resolved.quant[i][j].index);
      EXPECT_NEAR(scalar.quant[i][j].probability, resolved.quant[i][j].probability,
                  1e-9);
    }
  }
}

TEST(SimdDispatchTest, NamesAndForcing) {
  {
    ScopedScalar scalar(true);
    EXPECT_STREQ(simd::ActiveName(), "scalar");
  }
  // Resolved mode must be one of the two shipped tables.
  const char* name = simd::ActiveName();
  EXPECT_TRUE(std::string(name) == "scalar" || std::string(name) == "avx2") << name;
}

}  // namespace
}  // namespace pnn
