#include "src/geometry/circle.h"

#include <algorithm>
#include <cmath>

namespace pnn {

int IntersectCircles(const Circle& c1, const Circle& c2, Point2 out[2]) {
  Vec2 d = c2.center - c1.center;
  double dist2 = SquaredNorm(d);
  double dist = std::sqrt(dist2);
  if (dist == 0.0) return 0;  // Concentric: none or infinitely many.
  double r1 = c1.radius, r2 = c2.radius;
  if (dist > r1 + r2 || dist < std::abs(r1 - r2)) return 0;
  // Distance from c1 along d to the radical line.
  double a = (dist2 + r1 * r1 - r2 * r2) / (2.0 * dist);
  double h2 = r1 * r1 - a * a;
  Vec2 u = d / dist;
  Point2 mid = c1.center + a * u;
  if (h2 <= 0.0) {
    out[0] = mid;
    return 1;
  }
  double h = std::sqrt(h2);
  Vec2 n = Perp(u);
  out[0] = mid + h * n;
  out[1] = mid - h * n;
  return 2;
}

double CircularCapArea(double r, double d) {
  if (d >= r) return 0.0;
  if (d <= -r) return M_PI * r * r;
  // Cap on the far side of a chord at signed distance d from center.
  double theta = std::acos(std::clamp(d / r, -1.0, 1.0));
  return r * r * theta - d * std::sqrt(std::max(0.0, r * r - d * d));
}

double DiskIntersectionArea(const Circle& c1, const Circle& c2) {
  double r1 = c1.radius, r2 = c2.radius;
  double d = Distance(c1.center, c2.center);
  if (d >= r1 + r2) return 0.0;
  double rmin = std::min(r1, r2);
  if (d <= std::abs(r1 - r2)) return M_PI * rmin * rmin;
  // Signed distances from each center to the radical line.
  double d1 = (d * d + r1 * r1 - r2 * r2) / (2.0 * d);
  double d2 = d - d1;
  return CircularCapArea(r1, d1) + CircularCapArea(r2, d2);
}

bool DiskContains(const Circle& c, Point2 p) {
  return SquaredDistance(c.center, p) <= c.radius * c.radius;
}

}  // namespace pnn
