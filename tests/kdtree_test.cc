// kd-tree tests: every query mode validated against a linear scan on random
// inputs, plus edge cases (duplicates, collinear points, tiny sets).

#include "src/spatial/kdtree.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace pnn {
namespace {

std::vector<Point2> RandomPoints(int n, Rng* rng, double span = 100.0) {
  std::vector<Point2> pts(n);
  for (auto& p : pts) p = {rng->Uniform(-span, span), rng->Uniform(-span, span)};
  return pts;
}

TEST(KdTree, NearestMatchesLinearScan) {
  Rng rng(31);
  auto pts = RandomPoints(500, &rng);
  KdTree tree(pts);
  for (int t = 0; t < 200; ++t) {
    Point2 q{rng.Uniform(-120, 120), rng.Uniform(-120, 120)};
    double best = 1e300;
    for (const auto& p : pts) best = std::min(best, Distance(q, p));
    double d;
    int idx = tree.Nearest(q, &d);
    EXPECT_NEAR(d, best, 1e-9);
    EXPECT_NEAR(Distance(q, pts[idx]), best, 1e-9);
  }
}

TEST(KdTree, KNearestSortedAndComplete) {
  Rng rng(37);
  auto pts = RandomPoints(300, &rng);
  KdTree tree(pts);
  for (int t = 0; t < 50; ++t) {
    Point2 q{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
    int k = static_cast<int>(rng.UniformInt(1, 40));
    auto got = tree.KNearest(q, k);
    ASSERT_EQ(static_cast<int>(got.size()), k);
    // Ascending distances.
    for (size_t i = 1; i < got.size(); ++i) {
      EXPECT_LE(Distance(q, pts[got[i - 1]]), Distance(q, pts[got[i]]) + 1e-12);
    }
    // Matches a sorted linear scan.
    std::vector<double> dists;
    for (const auto& p : pts) dists.push_back(Distance(q, p));
    std::sort(dists.begin(), dists.end());
    for (int i = 0; i < k; ++i) {
      EXPECT_NEAR(Distance(q, pts[got[i]]), dists[i], 1e-9);
    }
  }
}

TEST(KdTree, KNearestMoreThanN) {
  Rng rng(41);
  auto pts = RandomPoints(10, &rng);
  KdTree tree(pts);
  auto got = tree.KNearest({0, 0}, 25);
  EXPECT_EQ(got.size(), 10u);
}

TEST(KdTree, ReportWithinMatchesLinearScan) {
  Rng rng(43);
  auto pts = RandomPoints(400, &rng);
  KdTree tree(pts);
  for (int t = 0; t < 100; ++t) {
    Point2 q{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
    double r = rng.Uniform(1, 60);
    auto got = tree.ReportWithin(q, r);
    std::sort(got.begin(), got.end());
    std::vector<int> expect;
    for (size_t i = 0; i < pts.size(); ++i) {
      if (Distance(q, pts[i]) <= r) expect.push_back(static_cast<int>(i));
    }
    EXPECT_EQ(got, expect);
  }
}

TEST(KdTree, MinAdditivelyWeightedMatchesLinearScan) {
  Rng rng(47);
  auto pts = RandomPoints(400, &rng);
  std::vector<double> w(pts.size());
  for (auto& v : w) v = rng.Uniform(0.1, 30);
  KdTree tree(pts, w);
  for (int t = 0; t < 200; ++t) {
    Point2 q{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
    double best = 1e300;
    for (size_t i = 0; i < pts.size(); ++i) {
      best = std::min(best, Distance(q, pts[i]) + w[i]);
    }
    int arg;
    double got = tree.MinAdditivelyWeighted(q, &arg);
    EXPECT_NEAR(got, best, 1e-9);
    EXPECT_NEAR(Distance(q, pts[arg]) + w[arg], best, 1e-9);
  }
}

TEST(KdTree, ReportSubtractiveLessMatchesLinearScan) {
  Rng rng(53);
  auto pts = RandomPoints(400, &rng);
  std::vector<double> w(pts.size());
  for (auto& v : w) v = rng.Uniform(0.1, 20);
  KdTree tree(pts, w);
  for (int t = 0; t < 100; ++t) {
    Point2 q{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
    double bound = rng.Uniform(0, 80);
    auto got = tree.ReportSubtractiveLess(q, bound);
    std::sort(got.begin(), got.end());
    std::vector<int> expect;
    for (size_t i = 0; i < pts.size(); ++i) {
      if (Distance(q, pts[i]) - w[i] < bound) expect.push_back(static_cast<int>(i));
    }
    EXPECT_EQ(got, expect);
  }
}

TEST(KdTree, IncrementalEnumeratesAllInOrder) {
  Rng rng(59);
  auto pts = RandomPoints(150, &rng);
  KdTree tree(pts);
  Point2 q{3, -7};
  KdTree::Incremental inc(tree, q);
  double prev = -1;
  int count = 0;
  std::vector<bool> seen(pts.size(), false);
  while (inc.HasNext()) {
    double d;
    int idx = inc.Next(&d);
    EXPECT_GE(d, prev - 1e-12);  // Non-decreasing distances.
    EXPECT_NEAR(d, Distance(q, pts[idx]), 1e-12);
    EXPECT_FALSE(seen[idx]);     // Each point exactly once.
    seen[idx] = true;
    prev = d;
    ++count;
  }
  EXPECT_EQ(count, 150);
}

TEST(KdTree, DuplicatesAndCollinear) {
  std::vector<Point2> pts = {{0, 0}, {0, 0}, {1, 0}, {2, 0}, {3, 0},
                             {4, 0}, {5, 0}, {6, 0}, {7, 0}, {8, 0},
                             {9, 0}, {9, 0}, {9, 0}};
  KdTree tree(pts);
  double d;
  tree.Nearest({-1, 0}, &d);
  EXPECT_DOUBLE_EQ(d, 1.0);
  EXPECT_EQ(tree.ReportWithin({9, 0}, 0.0).size(), 3u);
  EXPECT_EQ(tree.KNearest({0, 0}, 13).size(), 13u);
}

TEST(KdTree, SinglePoint) {
  KdTree tree({{5, 5}});
  double d;
  EXPECT_EQ(tree.Nearest({0, 0}, &d), 0);
  EXPECT_NEAR(d, std::sqrt(50.0), 1e-12);
}

}  // namespace
}  // namespace pnn
